"""Tests for logical rewriting, query-string rendering, and selectivity
estimation / physical ordering."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.inverted import InvertedIndex
from repro.core.ordering import DiversityOrdering
from repro.query.estimate import (
    estimate_cardinality,
    estimate_selectivity,
    leaf_cardinality,
    order_for_leapfrog,
)
from repro.query.evaluate import res
from repro.query.parser import parse_query
from repro.query.query import AND, LEAF, OR, Query
from repro.query.rewrite import is_match_all_leaf, normalise, to_query_string

from .conftest import RANDOM_ORDERING, random_query, random_relation


class TestNormalise:
    def test_flattens(self):
        nested = Query(AND, children=(
            Query.scalar("a", 1),
            Query(AND, children=(Query.scalar("b", 2), Query.scalar("c", 3))),
        ))
        flat = normalise(nested)
        assert len(flat.children) == 3

    def test_merges_duplicate_leaves_summing_weights(self):
        q = Query.disjunction(
            Query.scalar("a", 1, weight=2.0),
            Query.scalar("a", 1, weight=3.0),
            Query.scalar("b", 2),
        )
        merged = normalise(q)
        assert len(merged.children) == 2
        weights = {c.predicate.attribute: c.weight for c in merged.children}
        assert weights["a"] == 5.0

    def test_score_preserved_by_merge(self):
        q = Query.disjunction(
            Query.scalar("a", 1, weight=2.0), Query.scalar("a", 1, weight=3.0)
        )
        merged = normalise(q)
        row = {"a": 1}
        assert merged.score(row) == q.score(row) == 5.0

    def test_true_dropped_from_and(self):
        q = Query.match_all() & Query.scalar("a", 1)
        assert normalise(q) == Query.scalar("a", 1)

    def test_all_true_and_collapses_to_match_all(self):
        q = Query(AND, children=(Query.match_all().children[0],))
        assert normalise(q).is_match_all()

    def test_singleton_collapse(self):
        q = Query(OR, children=(Query.scalar("a", 1),))
        assert normalise(q).kind == LEAF

    def test_leaf_passthrough(self):
        leaf = Query.scalar("a", 1)
        assert normalise(leaf) is leaf

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_boolean_equivalence(self, seed):
        rng = random.Random(seed)
        relation = random_relation(rng, max_rows=25)
        query = random_query(rng, weighted=True)
        rewritten = normalise(query)
        assert res(relation, query) == res(relation, rewritten)


class TestToQueryString:
    def test_scalar(self):
        assert to_query_string(Query.scalar("Make", "Honda")) == "Make = 'Honda'"

    def test_numeric(self):
        assert to_query_string(Query.scalar("Year", 2007)) == "Year = 2007"

    def test_weight(self):
        text = to_query_string(Query.scalar("a", 1, weight=2.5))
        assert text == "a = 1 [2.5]"

    def test_keyword(self):
        text = to_query_string(Query.keyword("D", "low miles"))
        assert text == "D CONTAINS 'low miles'"

    def test_quotes_escaped(self):
        q = Query.scalar("a", "O'Brien")
        assert parse_query(to_query_string(q)).predicate.value == "O'Brien"

    def test_nested(self):
        q = (Query.scalar("a", 1) | Query.scalar("b", 2)) & Query.scalar("c", 3)
        text = to_query_string(q)
        assert parse_query(text) == q

    @settings(max_examples=80, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_roundtrip(self, seed):
        rng = random.Random(seed)
        query = random_query(rng, weighted=True)
        assert parse_query(to_query_string(query)) == query


class TestEstimate:
    @pytest.fixture
    def index(self, cars):
        from repro.data.paper_example import figure1_ordering

        return InvertedIndex.build(cars, figure1_ordering())

    def test_leaf_cardinality_exact(self, index):
        assert leaf_cardinality(parse_query("Make = 'Honda'"), index) == 11
        assert leaf_cardinality(parse_query("Make = 'Tesla'"), index) == 0
        assert leaf_cardinality(
            parse_query("Description CONTAINS 'miles'"), index
        ) == 11
        assert leaf_cardinality(Query.match_all().children[0], index) == 15

    def test_keyword_multi_token_uses_rarest(self, index):
        assert leaf_cardinality(
            parse_query("Description CONTAINS 'good miles'"), index
        ) == 3  # 'good' appears 3 times, 'miles' 11

    def test_and_independence(self, index):
        q = parse_query("Make = 'Honda' AND Year = 2007")
        expected = 15 * (11 / 15) * (11 / 15)
        assert estimate_cardinality(q, index) == pytest.approx(expected)

    def test_or_inclusion_exclusion(self, index):
        q = parse_query("Make = 'Honda' OR Make = 'Toyota'")
        sel = 1 - (1 - 11 / 15) * (1 - 4 / 15)
        assert estimate_selectivity(q, index) == pytest.approx(sel)

    def test_empty_index(self):
        from repro.storage.relation import Relation
        from repro.storage.schema import Schema

        empty = Relation(Schema.of(a="categorical"))
        index = InvertedIndex.build(empty, DiversityOrdering(["a"]))
        assert estimate_cardinality(parse_query("a = 'x'"), index) == 0.0


class TestOrderForLeapfrog:
    @pytest.fixture
    def index(self, cars):
        from repro.data.paper_example import figure1_ordering

        return InvertedIndex.build(cars, figure1_ordering())

    def test_rarest_child_first(self, index):
        q = parse_query("Make = 'Honda' AND Description CONTAINS 'Rare'")
        ordered = order_for_leapfrog(q, index)
        first = ordered.children[0]
        assert first.predicate.attribute == "Description"

    def test_or_children_untouched_in_order_semantics(self, index):
        q = parse_query("Make = 'Honda' OR Make = 'Toyota'")
        ordered = order_for_leapfrog(q, index)
        assert {c.predicate.value for c in ordered.children} == {"Honda", "Toyota"}

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_semantics_preserved(self, seed):
        rng = random.Random(seed)
        relation = random_relation(rng, max_rows=25)
        index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
        query = random_query(rng, weighted=True)
        ordered = order_for_leapfrog(query, index)
        assert res(relation, query) == res(relation, ordered)
        names = relation.schema.names
        for row in relation:
            mapping = dict(zip(names, row))
            assert query.score(mapping) == pytest.approx(ordered.score(mapping))


class TestEngineOptimizeFlag:
    def test_same_answers_with_and_without(self, cars_engine):
        text = "Description CONTAINS 'Rare' AND Make = 'Honda'"
        a = cars_engine.search(text, k=3, optimize=True)
        b = cars_engine.search(text, k=3, optimize=False)
        assert a.deweys == b.deweys

    def test_optimized_conjunction_probes_less_or_equal(self, cars_engine):
        text = "Make = 'Honda' AND Description CONTAINS 'Rare'"
        optimized = cars_engine.search(text, k=3, algorithm="naive", optimize=True)
        plain = cars_engine.search(text, k=3, algorithm="naive", optimize=False)
        assert optimized.deweys == plain.deweys


class TestEstimateInvariants:
    """Property tests for the invariants the PR 7 cost model prices from.

    ``repro.planner`` assumes the estimator behaves like a measure: leaf
    estimates are exact, conjunction can only narrow, disjunction can only
    widen, and everything stays inside [0, |R|].  A violation here would
    silently skew every auto-selection decision, so these are pinned as
    properties rather than examples.
    """

    @staticmethod
    def _index(rng, max_rows=30):
        relation = random_relation(rng, max_rows=max_rows)
        return InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_clamped_and_leaf_exact(self, seed):
        rng = random.Random(seed)
        index = self._index(rng)
        query = random_query(rng)
        est = estimate_cardinality(query, index)
        assert 0.0 <= est <= len(index) + 1e-9
        for leaf in query.leaves():
            if is_match_all_leaf(leaf):
                continue
            assert estimate_cardinality(leaf, index) == pytest.approx(
                min(leaf_cardinality(leaf, index), len(index))
            )

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_monotone_under_conjunct_narrowing(self, seed):
        """est(q AND extra) <= est(q): adding a conjunct never widens."""
        rng = random.Random(seed)
        index = self._index(rng)
        query = random_query(rng)
        extra = random_query(rng)
        narrowed = Query(AND, children=(query, extra))
        est = estimate_cardinality(narrowed, index)
        assert est <= estimate_cardinality(query, index) + 1e-9
        assert est <= estimate_cardinality(extra, index) + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_monotone_under_disjunct_widening(self, seed):
        """est(q OR extra) >= est(q): adding a disjunct never narrows."""
        rng = random.Random(seed)
        index = self._index(rng)
        query = random_query(rng)
        extra = random_query(rng)
        widened = Query(OR, children=(query, extra))
        est = estimate_cardinality(widened, index)
        assert est >= estimate_cardinality(query, index) - 1e-9
        assert est >= estimate_cardinality(extra, index) - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_conjunction_bounded_by_rarest_leaf(self, seed):
        """An AND of leaves never estimates above its rarest leaf — the
        planner's ``rarest_leaf`` feature is a true upper bound there."""
        rng = random.Random(seed)
        index = self._index(rng)
        leaves = [random_query(rng) for _ in range(rng.randint(2, 4))]
        leaves = [q for q in leaves if q.kind == LEAF] or [Query.match_all()]
        conj = Query(AND, children=tuple(leaves))
        rarest = min(leaf_cardinality(leaf, index) for leaf in leaves)
        assert estimate_cardinality(conj, index) <= rarest + 1e-9

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_estimate_never_below_true_rarest_or_floor(self, seed):
        """An OR of leaves never estimates below its largest leaf (and so
        never below the rarest one either)."""
        rng = random.Random(seed)
        index = self._index(rng)
        leaves = [random_query(rng) for _ in range(rng.randint(2, 4))]
        leaves = [q for q in leaves if q.kind == LEAF] or [Query.match_all()]
        disj = Query(OR, children=tuple(leaves))
        largest = max(
            min(leaf_cardinality(leaf, index), len(index)) for leaf in leaves
        )
        assert estimate_cardinality(disj, index) >= largest - 1e-9

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=100_000))
    def test_empty_index_estimates_zero(self, seed):
        rng = random.Random(seed)
        relation = random_relation(rng, max_rows=8)
        for rid, _ in list(relation.iter_live()):
            relation.delete(rid)
        index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
        query = random_query(rng)
        assert estimate_cardinality(query, index) == 0.0
        assert estimate_selectivity(query, index) == 0.0
