"""Tests for the observability layer and its cross-layer bugfix satellites.

Four clusters:

* the metrics primitives (counters, gauges, histogram quantiles, labels,
  disabled registries, Prometheus rendering, collectors) and spans;
* the paper bounds as *runtime* assertions — every probe query's exported
  probe count stays within Theorem 2's ``2k`` (+1 positioning probe) and
  every one-pass query completes in a single scan, across the paper
  example, random relations, sharded execution and chaos/degraded runs;
* the serving-cache accounting fix (an epoch-invalidated entry is one
  miss and one eviction, exactly once, thread-safe);
* the resilience fixes (an open breaker ignores stale failures instead of
  resetting its cooldown; ``prepare`` never hammers a shard whose breaker
  is open; retry backoff cannot grant a post-deadline attempt).
"""

from __future__ import annotations

import json
import math
import random
import threading

import pytest

from repro import DiversityEngine, ServingCache, ServingEngine
from repro.__main__ import main
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.durability.wal import WriteAheadLog, insert_record
from repro.observability import (
    FakeClock,
    MetricsRegistry,
    current_span,
    get_registry,
    probe_bound,
    span,
    use_registry,
)
from repro.resilience import (
    ChaosPolicy,
    CircuitBreaker,
    DeadlineExceededError,
    ResiliencePolicy,
    TransientShardError,
)
from repro.sharding import ShardedEngine

from .conftest import RANDOM_ORDERING, random_query, random_relation


# ----------------------------------------------------------------------
# Metrics primitives
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_is_cached_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("reqs", shard=0)
        b = registry.counter("reqs", shard=0)
        c = registry.counter("reqs", shard=1)
        assert a is b
        assert a is not c
        a.inc()
        a.inc(2)
        assert registry.value("reqs", shard=0) == 3
        assert registry.value("reqs", shard=1) == 0

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_max_is_a_running_maximum(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set_max(5)
        gauge.set_max(3)
        assert gauge.value == 5
        gauge.set_max(9)
        assert gauge.value == 9

    def test_histogram_summary_and_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 2.0, 4.0, math.inf))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["sum"] == pytest.approx(6.5)
        assert summary["min"] == 0.5
        assert summary["max"] == 3.0
        # p50 lands in the (1, 2] bucket; interpolation stays inside it.
        assert 1.0 <= summary["p50"] <= 2.0
        assert 2.0 <= summary["p99"] <= 4.0

    def test_histogram_appends_inf_bucket(self):
        hist = MetricsRegistry().histogram("h", buckets=(1.0, 2.0))
        assert hist.buckets[-1] == math.inf
        hist.observe(100.0)
        assert hist.count == 1

    def test_empty_histogram_quantile_is_nan(self):
        hist = MetricsRegistry().histogram("h")
        assert math.isnan(hist.quantile(0.5))
        assert hist.summary() == {"count": 0, "sum": 0.0}

    def test_disabled_registry_noops(self):
        registry = MetricsRegistry(enabled=False)
        registry.counter("c").inc()
        registry.gauge("g").set(4)
        registry.histogram("h").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == []
        assert snapshot["gauges"] == []
        assert snapshot["histograms"] == []

    def test_use_registry_swaps_and_restores_default(self):
        before = get_registry()
        with use_registry() as registry:
            assert get_registry() is registry
            assert registry is not before
            get_registry().counter("inside").inc()
            assert registry.value("inside") == 1
        assert get_registry() is before
        assert before.find("inside") is None

    def test_snapshot_schema(self):
        with use_registry() as registry:
            registry.counter("c", "a counter", kind="x").inc(2)
            registry.gauge("g").set(1.5)
            registry.histogram("h").observe(3.0)
            document = registry.snapshot()
        assert document["format"] == "repro-metrics"
        assert document["version"] == 1
        assert {"name": "c", "labels": {"kind": "x"}, "value": 2.0} in document["counters"]
        assert document["histograms"][0]["count"] == 1
        json.dumps(document)  # must be JSON-able as-is

    def test_render_prometheus(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests", mode="fast").inc(3)
        registry.histogram("lat_ms", buckets=(1.0, math.inf)).observe(0.5)
        text = registry.render_prometheus()
        assert "# HELP reqs_total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{mode="fast"} 3' in text
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text
        assert "lat_ms_count 1" in text

    def test_collectors_run_at_export_time(self):
        registry = MetricsRegistry()
        state = {"depth": 7}
        registry.register_collector(
            lambda: registry.gauge("depth").set(state["depth"])
        )
        assert registry.value("depth") == 0
        registry.snapshot()
        assert registry.value("depth") == 7
        state["depth"] = 9
        registry.render_prometheus()
        assert registry.value("depth") == 9

    def test_counter_exact_under_threads(self):
        counter = MetricsRegistry().counter("hot")

        def spin():
            for _ in range(5000):
                counter.inc()

        workers = [threading.Thread(target=spin) for _ in range(4)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert counter.value == 20000


class TestSpans:
    def test_span_times_with_injected_clock(self):
        clock = FakeClock()
        with use_registry() as registry:
            with span("stage", clock=clock, k=3):
                clock.advance_ms(40)
        record = registry.spans[-1]
        assert record.name == "stage"
        assert record.duration_ms == pytest.approx(40.0)
        assert record.status == "ok"
        assert record.fields == {"k": 3}
        hist = registry.find("repro_span_duration_ms", span="stage")
        assert hist.count == 1

    def test_span_nesting_records_parent(self):
        with use_registry() as registry:
            with span("outer"):
                assert current_span().name == "outer"
                with span("inner"):
                    assert current_span().name == "inner"
            assert current_span() is None
        names = {record.name: record for record in registry.spans}
        assert names["inner"].parent == "outer"
        assert names["outer"].parent is None

    def test_span_error_status(self):
        with use_registry() as registry:
            with pytest.raises(RuntimeError):
                with span("broken"):
                    raise RuntimeError("boom")
        record = registry.spans[-1]
        assert record.status == "error"
        assert record.fields["error"] == "RuntimeError"
        assert registry.value("repro_span_errors_total", span="broken") == 1

    def test_span_on_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        with span("quiet", registry=registry):
            pass
        assert len(registry.spans) == 0

    def test_fake_clock(self):
        clock = FakeClock(start=2.0)
        assert clock() == 2.0
        clock.sleep(0.5)
        assert clock() == 2.5
        with pytest.raises(ValueError):
            clock.advance(-1)


# ----------------------------------------------------------------------
# Paper bounds as runtime metrics (satellite: probe/one-pass accounting)
# ----------------------------------------------------------------------
PAPER_QUERIES = [
    "Make = 'Honda'",
    "Make = 'Toyota'",
    "Model = 'Civic' OR Color = 'Blue'",
    "Make = 'Honda' AND Description CONTAINS 'miles'",
]


def _assert_bounds_clean(registry):
    """The two must-stay-zero violation counters, plus gauge coherence."""
    assert registry.value("repro_probe_bound_violations_total") == 0
    for mode in ("unscored", "scored"):
        assert registry.value(
            "repro_onepass_scan_violations_total", mode=mode) == 0
    max_calls = registry.value("repro_probe_max_calls")
    max_bound = registry.value("repro_probe_max_bound")
    if max_bound:
        assert max_calls <= max_bound


class TestPaperBoundsAtRuntime:
    def test_probe_bound_on_paper_example(self, cars_engine):
        with use_registry() as registry:
            runs = 0
            for query in PAPER_QUERIES:
                for k in (1, 2, 3, 6):
                    result = cars_engine.search(query, k, algorithm="probe")
                    assert result.stats["probe_calls"] <= probe_bound(k)
                    assert result.stats["probe_bound"] == probe_bound(k)
                    runs += 1
            hist = registry.find("repro_probe_calls", mode="unscored")
            assert hist.count == runs
            assert registry.value(
                "repro_queries_total", algorithm="probe", mode="unscored"
            ) == runs
            _assert_bounds_clean(registry)

    def test_onepass_single_scan_on_paper_example(self, cars_engine):
        with use_registry() as registry:
            skips = 0
            for query in PAPER_QUERIES:
                for k in (1, 2, 3):
                    result = cars_engine.search(query, k, algorithm="onepass")
                    assert result.stats["scan_passes"] == 1
                    skips += result.stats["skips"]
            # The exported total is exactly the sum of per-query stats.
            assert registry.value(
                "repro_onepass_skips_total", mode="unscored") == skips
            assert registry.value(
                "repro_onepass_queries_total", mode="unscored") == 12
            _assert_bounds_clean(registry)

    @pytest.mark.parametrize("seed", range(4))
    def test_bounds_on_random_relations(self, seed):
        rng = random.Random(seed)
        relation = random_relation(rng, max_rows=45)
        engine = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        with use_registry() as registry:
            for _ in range(8):
                query = random_query(rng)
                k = rng.randint(1, 6)
                probe = engine.search(query, k, algorithm="probe")
                assert probe.stats["probe_calls"] <= probe_bound(k)
                onepass = engine.search(query, k, algorithm="onepass")
                assert onepass.stats["scan_passes"] == 1
                scored = engine.search(query, k, algorithm="onepass", scored=True)
                assert scored.stats["scan_passes"] == 1
            _assert_bounds_clean(registry)

    def test_bounds_on_sharded_execution(self, cars):
        with use_registry() as registry:
            with ShardedEngine.from_relation(
                cars, figure1_ordering(), shards=3
            ) as engine:
                for query in PAPER_QUERIES:
                    probe = engine.search(query, 3, algorithm="probe")
                    assert probe.stats["probe_calls"] <= probe_bound(3)
                    onepass = engine.search(query, 3, algorithm="onepass")
                    assert onepass.stats["scan_passes"] == 1
            _assert_bounds_clean(registry)

    def test_bounds_hold_under_transient_chaos(self, cars):
        # Per-read successes are not reported to the breakers mid-scan, so
        # a low min_calls could open a circuit from transient noise alone;
        # park the breakers out of the way — this test is about bounds.
        policy = ResiliencePolicy(max_retries=10, breaker_min_calls=1000, seed=7)
        with use_registry() as registry:
            with ShardedEngine.from_relation(
                cars, figure1_ordering(), shards=3, policy=policy
            ) as engine:
                engine.inject_chaos(ChaosPolicy.transient(0.25, seed=3))
                for query in PAPER_QUERIES:
                    result = engine.search(query, 4, algorithm="probe")
                    assert result.stats["probe_calls"] <= probe_bound(4)
            # The retried reads re-issue the *failed* probe only, so the
            # accounting stays within the Theorem 2 budget.
            assert registry.value("repro_retries_total", phase="scan") > 0
            _assert_bounds_clean(registry)

    def test_bounds_hold_on_degraded_scatter_gather(self, cars):
        # Default breaker thresholds: one prepare-phase hard failure must
        # not open the circuit, so the execute fan-out still reaches the
        # crashed shard and records the per-query "crashed" loss.
        policy = ResiliencePolicy(max_retries=0)
        with use_registry() as registry:
            with ShardedEngine.from_relation(
                cars, figure1_ordering(), shards=3, policy=policy
            ) as engine:
                engine.inject_chaos(ChaosPolicy.crash_shards(1))
                result = engine.search("Make = 'Honda'", 3, algorithm="naive")
                assert result.stats["degraded"] is True
            assert registry.value("repro_degraded_queries_total") == 1
            assert registry.value(
                "repro_shards_failed_total", reason="crashed") >= 1
            _assert_bounds_clean(registry)


# ----------------------------------------------------------------------
# Satellite: serving-cache accounting
# ----------------------------------------------------------------------
class TestCacheAccounting:
    def test_epoch_invalidation_is_one_miss_and_one_eviction(self, cars):
        serving = ServingEngine(
            DiversityEngine.from_relation(cars, figure1_ordering()),
            cache=ServingCache(),
        )
        query = "Make = 'Honda'"
        serving.search(query, 3)                      # miss, cached
        serving.search(query, 3)                      # hit
        serving.insert(("Honda", "Fit", "Silver", 2007, "Tiny"))  # epoch bump
        serving.search(query, 3)                      # invalidated -> miss
        stats = serving.cache.stats_snapshot()
        assert stats.hits == 1
        assert stats.misses == 2
        assert stats.epoch_invalidations == 1
        assert stats.evictions == 1                   # exactly once, not twice
        serving.close()

    def test_lru_and_invalidation_drops_never_double_count(self, cars):
        serving = ServingEngine(
            DiversityEngine.from_relation(cars, figure1_ordering()),
            cache=ServingCache(result_capacity=1),
        )
        queries = ["Make = 'Honda'", "Make = 'Toyota'"]
        for round_ in range(3):
            for query in queries:                     # capacity 1: LRU churn
                serving.search(query, 2)
            serving.insert(("Kia", "Rio", "Red", 2007, f"round {round_}"))
        stats = serving.cache.stats_snapshot()
        cache = serving.cache
        assert stats.evictions == (
            cache.results.evictions + cache.results.invalidations
        )
        assert stats.lookups == stats.hits + stats.misses == 6
        serving.close()

    def test_threaded_batch_counters_are_exact(self, cars):
        serving = ServingEngine(
            DiversityEngine.from_relation(cars, figure1_ordering())
        )
        queries = PAPER_QUERIES * 6
        before = serving.cache.stats_snapshot()
        report = serving.search_many(queries, k=3, threads=4)
        after = serving.cache.stats_snapshot()
        # Every query is exactly one lookup: no lost or torn increments.
        delta_lookups = after.lookups - before.lookups
        assert delta_lookups == len(queries)
        assert report.cache_stats["hits"] + report.cache_stats["misses"] == len(queries)
        serving.close()

    def test_cache_collector_exports_gauges(self, cars):
        with use_registry() as registry:
            serving = ServingEngine(
                DiversityEngine.from_relation(cars, figure1_ordering())
            )
            serving.search("Make = 'Honda'", 3)
            serving.search("Make = 'Honda'", 3)
            snapshot = registry.snapshot()
            gauges = {
                (g["name"], tuple(sorted(g["labels"].items()))): g["value"]
                for g in snapshot["gauges"]
            }
            assert gauges[("repro_cache_hits", ())] == 1
            assert gauges[("repro_cache_misses", ())] == 1
            assert gauges[("repro_cache_entries", (("kind", "results"),))] == 1
            serving.close()
            # After close the collector is unhooked: exports keep working.
            registry.snapshot()

    def test_close_flushes_terminal_cache_stats(self, cars):
        # No export happens while the engine is open; close() must still
        # materialise the lifetime cache stats before unhooking.
        with use_registry() as registry:
            serving = ServingEngine(
                DiversityEngine.from_relation(cars, figure1_ordering())
            )
            serving.search("Make = 'Honda'", 3)
            serving.search("Make = 'Honda'", 3)
            serving.close()
            gauges = {
                g["name"]: g["value"] for g in registry.snapshot()["gauges"]
            }
            assert gauges["repro_cache_hits"] == 1
            assert gauges["repro_cache_misses"] == 1


# ----------------------------------------------------------------------
# Posting-list memory gauges (compressed-backend tentpole)
# ----------------------------------------------------------------------
class TestPostingsCollector:
    def _build(self, cars, backend):
        from repro.index.inverted import InvertedIndex

        return InvertedIndex.build(cars, figure1_ordering(), backend=backend)

    def test_gauges_in_snapshot_and_prometheus(self, cars):
        from repro.observability import register_postings_collector

        with use_registry() as registry:
            index = self._build(cars, "compressed")
            pinned = register_postings_collector(registry, index)
            assert pinned is not None
            stats = index.memory_stats()
            label = (("backend", "compressed"),)
            gauges = {
                (g["name"], tuple(sorted(g["labels"].items()))): g["value"]
                for g in registry.snapshot()["gauges"]
            }
            assert gauges[("repro_postings_bytes", label)] == stats["bytes"]
            assert gauges[("repro_postings_count", label)] == stats["postings"]
            assert gauges[("repro_postings_lists", label)] == stats["lists"]
            text = registry.render_prometheus()
            assert 'repro_postings_bytes{backend="compressed"}' in text
            assert "# TYPE repro_postings_bytes gauge" in text

    def test_gauges_track_mutations(self, cars):
        from repro.observability import register_postings_collector

        with use_registry() as registry:
            index = self._build(cars, "array")
            register_postings_collector(registry, index)
            before = registry.snapshot()
            bytes_before = registry.value("repro_postings_bytes", backend="array")
            count_before = registry.value("repro_postings_count", backend="array")
            rid = index.relation.insert(
                ("Honda", "Civic", "Black", 2009, "loaded clean")
            )
            index.insert(rid)
            registry.snapshot()
            assert before is not None
            assert registry.value(
                "repro_postings_count", backend="array"
            ) > count_before
            assert registry.value(
                "repro_postings_bytes", backend="array"
            ) > bytes_before

    def test_collector_unhooks_after_index_is_collected(self, cars):
        import gc

        from repro.observability import register_postings_collector

        with use_registry() as registry:
            index = self._build(cars, "compressed")
            register_postings_collector(registry, index)
            registry.snapshot()
            del index
            gc.collect()
            # Export after collection must not raise and must self-unhook.
            registry.snapshot()
            registry.snapshot()

    def test_disabled_registry_returns_none(self, cars):
        from repro.observability import register_postings_collector

        index = self._build(cars, "array")
        assert register_postings_collector(
            MetricsRegistry(enabled=False), index
        ) is None
        assert register_postings_collector(None, index) is None


# ----------------------------------------------------------------------
# Satellite: circuit-breaker fixes
# ----------------------------------------------------------------------
class TestBreakerFixes:
    def test_failures_while_open_do_not_reset_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=0.5, window=4, min_calls=2,
                                 cooldown_ms=100.0, clock=clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opens == 1
        # Stale outcomes keep arriving mid-cooldown (calls admitted before
        # the trip).  They must neither re-trip nor restart the countdown.
        clock.advance_ms(60)
        for _ in range(5):
            breaker.record_failure()
        assert breaker.opens == 1
        clock.advance_ms(50)          # 110ms since the (only) trip
        assert breaker.state == "half_open"

    def test_breaker_transition_metrics(self):
        clock = FakeClock()
        with use_registry() as registry:
            breaker = CircuitBreaker(min_calls=1, threshold=1.0,
                                     cooldown_ms=10.0, clock=clock)
            breaker.record_failure()
            assert registry.value(
                "repro_breaker_transitions_total", to="open") == 1
            clock.advance_ms(20)
            assert breaker.state == "half_open"
            assert registry.value(
                "repro_breaker_transitions_total", to="half_open") == 1
            assert breaker.allow()
            breaker.record_success()
            assert registry.value(
                "repro_breaker_transitions_total", to="closed") == 1

    def test_prepare_does_not_hammer_an_open_shard(self, cars):
        policy = ResiliencePolicy(max_retries=0, breaker_min_calls=1,
                                  breaker_threshold=1.0,
                                  breaker_cooldown_ms=60_000.0)
        with use_registry() as registry:
            with ShardedEngine.from_relation(
                cars, figure1_ordering(), shards=3, policy=policy
            ) as engine:
                engine.inject_chaos(ChaosPolicy.crash_shards(0))
                first = engine.search("Make = 'Honda'", 3, algorithm="naive")
                assert first.stats["degraded"] is True
                assert engine.health.open_shards() == [0]
                hard_after_first = engine.health[0].hard_failures
                opens_after_first = engine.health.breakers[0].opens

                for _ in range(4):
                    result = engine.search(
                        "Make = 'Honda'", 3, algorithm="naive")
                    assert result.stats["degraded"] is True
                # The open breaker short-circuits both phases: no fresh
                # hard failures are charged, the circuit is not re-tripped,
                # and the fan-out records skips instead of calls.
                assert engine.health[0].hard_failures == hard_after_first
                assert engine.health.breakers[0].opens == opens_after_first
                assert engine.health[0].skipped_open >= 4
            assert registry.value(
                "repro_plan_degraded_total", reason="circuit open") >= 4


# ----------------------------------------------------------------------
# Satellite: one clock, no deadline drift
# ----------------------------------------------------------------------
class TestClockHygiene:
    def test_backoff_cannot_grant_a_post_deadline_attempt(self, cars):
        clock = FakeClock()
        policy = ResiliencePolicy(deadline_ms=50.0, max_retries=5,
                                  backoff_base_ms=200.0, jitter=0.0)
        engine = ShardedEngine.from_relation(
            cars, figure1_ordering(), shards=2, policy=policy,
            clock=clock, sleep=clock.sleep,
        )
        calls = []

        def flaky():
            calls.append(clock())
            raise TransientShardError(0, "read")

        with pytest.raises(DeadlineExceededError):
            engine._run_with_retries(flaky, engine._deadline())
        # The 200ms backoff was clamped to the 50ms budget; sleeping it
        # consumed the whole deadline, so no second attempt may run.
        assert len(calls) == 1
        assert clock() == pytest.approx(0.05)
        engine.close()

    def test_engine_deadline_uses_injected_clock(self, cars):
        clock = FakeClock()
        policy = ResiliencePolicy(deadline_ms=100.0)
        engine = ShardedEngine.from_relation(
            cars, figure1_ordering(), shards=2, policy=policy,
            clock=clock, sleep=clock.sleep,
        )
        deadline = engine._deadline()
        assert deadline.remaining_ms() == 100.0
        clock.advance_ms(60)
        assert deadline.remaining_ms() == pytest.approx(40.0)
        clock.advance_ms(60)
        assert deadline.expired()
        engine.close()

    def test_serving_batch_timing_uses_injected_clock(self, cars):
        clock = FakeClock()
        serving = ServingEngine(
            DiversityEngine.from_relation(cars, figure1_ordering()),
            clock=clock,
        )
        report = serving.search_many(["Make = 'Honda'"], k=2)
        assert report.total_seconds == 0.0   # the fake clock never moved
        serving.close()


# ----------------------------------------------------------------------
# Durability instrumentation
# ----------------------------------------------------------------------
class TestDurabilityMetrics:
    def test_wal_counters(self, tmp_path):
        with use_registry() as registry:
            wal = WriteAheadLog.create(tmp_path / "wal.log", fsync_every=0)
            for seq in range(3):
                wal.append(insert_record(seq + 1, seq, ("a",), (0, 0)))
            wal.sync()
            wal.truncate()
            wal.close()
            assert registry.value("repro_wal_appends_total") == 3
            assert registry.value("repro_wal_bytes_appended_total") == wal.bytes_appended
            assert registry.value("repro_wal_syncs_total") == 1
            assert registry.value("repro_wal_truncates_total") == 1
            assert registry.find("repro_wal_sync_ms").count == 1


# ----------------------------------------------------------------------
# CLI export
# ----------------------------------------------------------------------
class TestMetricsCLI:
    def test_metrics_subcommand_check_passes_on_demo(self, tmp_path, capsys):
        out = tmp_path / "metrics.json"
        code = main(["metrics", "--repeat", "1", "--limit", "4",
                     "--out", str(out), "--check"])
        assert code == 0
        assert "bounds ok" in capsys.readouterr().err
        document = json.loads(out.read_text())
        assert document["format"] == "repro-metrics"
        names = {entry["name"] for entry in document["counters"]}
        assert "repro_queries_total" in names
        gauge_names = {entry["name"] for entry in document["gauges"]}
        assert "repro_probe_max_calls" in gauge_names

    def test_metrics_subcommand_prometheus_format(self, capsys):
        code = main(["metrics", "--repeat", "1", "--limit", "2",
                     "--format", "prometheus"])
        assert code == 0
        text = capsys.readouterr().out
        assert "# TYPE repro_queries_total counter" in text

    def test_query_metrics_out_flag(self, tmp_path, capsys):
        from repro.storage.csvio import write_csv

        csv_path = tmp_path / "cars.csv"
        write_csv(figure1_relation(), csv_path)
        out = tmp_path / "cars.idx"
        assert main(["build", str(csv_path),
                     "--ordering", "Make,Model,Color,Year,Description",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        metrics_out = tmp_path / "query-metrics.json"
        assert main(["query", str(out), "Make = 'Honda'", "-k", "3",
                     "--metrics-out", str(metrics_out)]) == 0
        document = json.loads(metrics_out.read_text())
        assert document["format"] == "repro-metrics"
        assert any(entry["name"] == "repro_queries_total"
                   for entry in document["counters"])
