"""Tests for the diversity report card and the auctions generator."""

import pytest

from repro import DiversityEngine
from repro.core.baselines import collect_all
from repro.core.diagnostics import compare_reports, diversity_report
from repro.data.auctions import (
    CATEGORIES,
    auctions_ordering,
    auctions_schema,
    generate_auctions,
)
from repro.data.paper_example import figure1_ordering
from repro.index.merged import MergedList
from repro.query.parser import parse_query


class TestAuctionsGenerator:
    def test_deterministic(self):
        assert list(generate_auctions(rows=200, seed=1)) == list(
            generate_auctions(rows=200, seed=1)
        )

    def test_schema_and_ordering(self):
        relation = generate_auctions(rows=10)
        assert relation.schema == auctions_schema()
        assert auctions_ordering().depth == 6

    def test_subcategories_belong_to_categories(self):
        relation = generate_auctions(rows=500, seed=2)
        for row in relation:
            assert row[1] in CATEGORIES[row[0]]

    def test_negative_rows_rejected(self):
        with pytest.raises(ValueError):
            generate_auctions(rows=-1)

    def test_engine_end_to_end(self):
        relation = generate_auctions(rows=800, seed=3)
        engine = DiversityEngine.from_relation(relation, auctions_ordering())
        result = engine.search("Condition = 'used'", k=5)
        assert len(result) == 5
        assert len({item["Category"] for item in result}) == 5


class TestDiversityReport:
    @pytest.fixture
    def engine(self, cars):
        return DiversityEngine.from_relation(cars, figure1_ordering())

    def report_for(self, engine, algorithm, k=4, text="Make = 'Honda'"):
        result = engine.search(text, k=k, algorithm=algorithm)
        merged = MergedList(parse_query(text), engine.index)
        full = collect_all(merged)
        return diversity_report(result.deweys, full, engine.index.dewey)

    def test_exact_algorithm_has_zero_violations(self, engine):
        report = self.report_for(engine, "probe")
        assert report.is_exactly_diverse
        assert report.violations == 0

    def test_basic_violates(self, engine):
        report = self.report_for(engine, "basic", k=3,
                                 text="Description CONTAINS 'Low'")
        assert not report.is_exactly_diverse

    def test_level_statistics(self, engine):
        report = self.report_for(engine, "probe", k=4)
        by_attribute = {level.attribute: level for level in report.levels}
        assert by_attribute["Model"].distinct_shown == 4
        assert by_attribute["Model"].distinct_available == 4
        assert by_attribute["Model"].coverage == 1.0
        assert by_attribute["Make"].distinct_available == 1

    def test_pair_objective_counts_duplicates(self, engine):
        # Three Civics out of Hondas: at the model level, 3 items share one
        # model -> 3 pairs.
        civics = [
            engine.index.dewey.dewey_of(rid) for rid in (0, 1, 2)
        ]
        merged = MergedList(parse_query("Make = 'Honda'"), engine.index)
        full = collect_all(merged)
        report = diversity_report(civics, full, engine.index.dewey)
        by_attribute = {level.attribute: level for level in report.levels}
        assert by_attribute["Model"].pair_objective == 3
        assert by_attribute["Color"].pair_objective == 0

    def test_render(self, engine):
        report = self.report_for(engine, "probe")
        text = report.render()
        assert "exactly diverse" in text
        assert "Model" in text

    def test_empty_selection(self, engine):
        report = diversity_report([], [], engine.index.dewey)
        assert report.size == 0 and report.violations == 0

    def test_compare_reports(self, engine):
        reports = {
            "probe": self.report_for(engine, "probe"),
            "basic": self.report_for(engine, "basic"),
        }
        table = compare_reports(reports)
        assert "probe" in table and "basic" in table
        assert "violations" in table

    def test_compare_reports_empty(self):
        assert compare_reports({}) == "(no reports)"
