"""Tests for index snapshot save/load (v2 checksummed format)."""

import gzip
import json

import pytest

from repro import DiversityEngine
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.index.inverted import InvertedIndex
from repro.index.snapshot import (
    FORMAT_NAME,
    SnapshotError,
    load_index,
    payload_digest,
    save_index,
)


@pytest.fixture
def built_index(cars):
    return InvertedIndex.build(cars, figure1_ordering())


def read_document(path) -> dict:
    with gzip.open(path, "rb") as handle:
        return json.loads(handle.read())


def write_document(path, document, reseal: bool = True) -> None:
    """Write a (possibly tampered) document back; ``reseal`` recomputes the
    digest so the *semantic* validation under test is reached, not the
    checksum."""
    if reseal and document.get("version") == 2:
        document["digest"] = payload_digest(document["payload"])
    with gzip.open(path, "wb") as handle:
        handle.write(json.dumps(document).encode())


class TestRoundtrip:
    def test_deweys_preserved(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        restored = load_index(path)
        assert len(restored) == len(built_index)
        for rid in range(len(built_index.relation)):
            assert restored.dewey.dewey_of(rid) == built_index.dewey.dewey_of(rid)

    def test_postings_preserved(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        restored = load_index(path)
        assert list(restored.scalar_postings("Make", "Honda")) == list(
            built_index.scalar_postings("Make", "Honda")
        )
        assert list(restored.token_postings("Description", "miles")) == list(
            built_index.token_postings("Description", "miles")
        )
        assert list(restored.all_postings()) == list(built_index.all_postings())

    def test_queries_identical(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        restored = load_index(path)
        original_engine = DiversityEngine(built_index)
        restored_engine = DiversityEngine(restored)
        for text in ["Make = 'Honda'", "Year = 2007 AND Description CONTAINS 'miles'"]:
            assert (
                original_engine.search(text, k=5).deweys
                == restored_engine.search(text, k=5).deweys
            )

    def test_backend_preserved(self, cars, tmp_path):
        index = InvertedIndex.build(cars, figure1_ordering(), backend="bptree")
        path = tmp_path / "cars.idx"
        save_index(index, path)
        assert load_index(path).backend == "bptree"

    def test_incremental_assignment_preserved(self, tmp_path):
        """Incremental (first-come) sibling numbers survive the roundtrip —
        the reason the assignment is persisted at all."""
        relation = figure1_relation()
        index = InvertedIndex(relation, figure1_ordering())
        for rid in reversed(range(len(relation))):  # reverse insertion order
            index.insert(rid)
        path = tmp_path / "cars.idx"
        save_index(index, path)
        restored = load_index(path)
        for rid in range(len(relation)):
            assert restored.dewey.dewey_of(rid) == index.dewey.dewey_of(rid)

    def test_restored_index_accepts_new_inserts(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        restored = load_index(path)
        rid = restored.relation.insert(("Tesla", "ModelS", "Red", 2008, "rare"))
        dewey = restored.insert(rid)
        assert restored.dewey.rid_of(dewey) == rid
        assert len(restored.scalar_postings("Make", "Tesla")) == 1

    def test_autos_scale_roundtrip(self, tmp_path):
        relation = generate_autos(AutosSpec(rows=800, seed=3))
        index = InvertedIndex.build(relation, autos_ordering())
        path = tmp_path / "autos.idx"
        save_index(index, path)
        restored = load_index(path)
        assert restored.dewey.all_deweys() == index.dewey.all_deweys()


class TestValidation:
    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "bogus.idx"
        path.write_bytes(b"not gzip at all")
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_wrong_format_field(self, tmp_path):
        path = tmp_path / "bogus.idx"
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps({"format": "something-else"}).encode())
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_wrong_version(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        document["version"] = 99
        write_document(path, document)
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_missing_field(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        del document["payload"]["deweys"]
        write_document(path, document)
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_corrupt_dewey_depth(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        document["payload"]["deweys"][0][1] = [0, 0]
        write_document(path, document)
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_duplicate_dewey(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        document["payload"]["deweys"][1][1] = document["payload"]["deweys"][0][1]
        write_document(path, document)
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_inconsistent_component_mapping(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        # Two Hondas with different top-level components.
        document["payload"]["deweys"][0][1][0] = 5
        write_document(path, document)
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_digest_mismatch_rejected(self, built_index, tmp_path):
        """Any payload tampering without resealing fails the checksum."""
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        document["payload"]["rows"][0][1][0] = "Hacked"
        write_document(path, document, reseal=False)
        with pytest.raises(SnapshotError, match="digest mismatch"):
            load_index(path)

    def test_truncated_row_table_rejected(self, built_index, tmp_path):
        """Regression: a document whose row table was silently truncated
        (declared count disagrees with rows present) must not load short."""
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        document["payload"]["rows"] = document["payload"]["rows"][:-3]
        write_document(path, document)  # digest resealed: count check must fire
        with pytest.raises(SnapshotError, match="row count mismatch"):
            load_index(path)

    def test_live_count_mismatch_rejected(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        document["payload"]["live_rows"] -= 2
        write_document(path, document)
        with pytest.raises(SnapshotError, match="live rows"):
            load_index(path)

    def test_malformed_structures_wrapped(self, built_index, tmp_path):
        """Decode failures inside a well-formed envelope surface as
        SnapshotError naming the path, never raw KeyError/TypeError."""
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        document["payload"]["schema"] = [["Make"]]  # missing the kind
        write_document(path, document)
        with pytest.raises(SnapshotError, match=str(path)):
            load_index(path)

    def test_bad_attribute_kind_wrapped(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        document = read_document(path)
        document["payload"]["schema"][0][1] = "no-such-kind"
        write_document(path, document)
        with pytest.raises(SnapshotError, match=str(path)):
            load_index(path)


class TestLegacyV1:
    def _v1_document(self, index) -> dict:
        relation = index.relation
        return {
            "format": FORMAT_NAME,
            "version": 1,
            "name": relation.name,
            "backend": index.backend,
            "ordering": list(index.ordering.attributes),
            "schema": [[a.name, a.kind.value] for a in relation.schema],
            "rows": [list(row) for row in relation],
            "deleted": relation.deleted_rids(),
            "deweys": [
                [rid, list(index.dewey.dewey_of(rid))]
                for rid in sorted(index.dewey.iter_rids())
            ],
        }

    def test_v1_snapshot_still_loads(self, built_index, tmp_path):
        path = tmp_path / "legacy.idx"
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps(self._v1_document(built_index)).encode())
        restored = load_index(path)
        assert restored.dewey.all_deweys() == built_index.dewey.all_deweys()
        assert restored.epoch == 0

    def test_v1_truncated_rows_rejected(self, built_index, tmp_path):
        document = self._v1_document(built_index)
        document["rows"] = document["rows"][:-2]  # silently chopped file
        path = tmp_path / "legacy.idx"
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps(document).encode())
        with pytest.raises(SnapshotError):
            load_index(path)


class TestRestoredMutation:
    def test_new_value_never_reuses_forgotten_sibling(self, tmp_path):
        """Regression: restore after a delete leaves a gap in the sibling
        dictionary; a brand-new value must take a fresh component, not the
        forgotten one (which would collide live Dewey IDs)."""
        relation = figure1_relation()
        engine = DiversityEngine.from_relation(relation, figure1_ordering())
        # Tombstone every Honda so the 'Honda' level-1 component is absent
        # from the persisted assignment.
        position = relation.schema.position("Make")
        honda_rids = [
            rid for rid, row in relation.iter_live() if row[position] == "Honda"
        ]
        for rid in honda_rids:
            engine.delete(rid)
        path = tmp_path / "gap.idx"
        save_index(engine.index, path)
        restored = load_index(path)
        rid = restored.relation.insert(("Acura", "TSX", "Silver", 2008, "new"))
        dewey = restored.insert(rid)
        # The new make's component must not equal any other make's.
        components = {
            restored.dewey.dewey_of(other)[0]
            for other in restored.dewey.iter_rids()
            if other != rid
        }
        assert dewey == restored.dewey.dewey_of(rid)
        assert dewey[0] not in components

    def test_epoch_survives_roundtrip(self, built_index, tmp_path):
        relation = built_index.relation
        rid = relation.insert(("Tesla", "ModelS", "Red", 2008, "rare"))
        built_index.insert(rid)
        built_index.remove(rid)
        relation.delete(rid)
        assert built_index.epoch == 2
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        assert load_index(path).epoch == 2
