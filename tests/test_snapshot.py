"""Tests for index snapshot save/load."""

import gzip
import json

import pytest

from repro import DiversityEngine
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.index.inverted import InvertedIndex
from repro.index.snapshot import SnapshotError, load_index, save_index


@pytest.fixture
def built_index(cars):
    return InvertedIndex.build(cars, figure1_ordering())


class TestRoundtrip:
    def test_deweys_preserved(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        restored = load_index(path)
        assert len(restored) == len(built_index)
        for rid in range(len(built_index.relation)):
            assert restored.dewey.dewey_of(rid) == built_index.dewey.dewey_of(rid)

    def test_postings_preserved(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        restored = load_index(path)
        assert list(restored.scalar_postings("Make", "Honda")) == list(
            built_index.scalar_postings("Make", "Honda")
        )
        assert list(restored.token_postings("Description", "miles")) == list(
            built_index.token_postings("Description", "miles")
        )
        assert list(restored.all_postings()) == list(built_index.all_postings())

    def test_queries_identical(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        restored = load_index(path)
        original_engine = DiversityEngine(built_index)
        restored_engine = DiversityEngine(restored)
        for text in ["Make = 'Honda'", "Year = 2007 AND Description CONTAINS 'miles'"]:
            assert (
                original_engine.search(text, k=5).deweys
                == restored_engine.search(text, k=5).deweys
            )

    def test_backend_preserved(self, cars, tmp_path):
        index = InvertedIndex.build(cars, figure1_ordering(), backend="bptree")
        path = tmp_path / "cars.idx"
        save_index(index, path)
        assert load_index(path).backend == "bptree"

    def test_incremental_assignment_preserved(self, tmp_path):
        """Incremental (first-come) sibling numbers survive the roundtrip —
        the reason the assignment is persisted at all."""
        relation = figure1_relation()
        index = InvertedIndex(relation, figure1_ordering())
        for rid in reversed(range(len(relation))):  # reverse insertion order
            index.insert(rid)
        path = tmp_path / "cars.idx"
        save_index(index, path)
        restored = load_index(path)
        for rid in range(len(relation)):
            assert restored.dewey.dewey_of(rid) == index.dewey.dewey_of(rid)

    def test_restored_index_accepts_new_inserts(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        restored = load_index(path)
        rid = restored.relation.insert(("Tesla", "ModelS", "Red", 2008, "rare"))
        dewey = restored.insert(rid)
        assert restored.dewey.rid_of(dewey) == rid
        assert len(restored.scalar_postings("Make", "Tesla")) == 1

    def test_autos_scale_roundtrip(self, tmp_path):
        relation = generate_autos(AutosSpec(rows=800, seed=3))
        index = InvertedIndex.build(relation, autos_ordering())
        path = tmp_path / "autos.idx"
        save_index(index, path)
        restored = load_index(path)
        assert restored.dewey.all_deweys() == index.dewey.all_deweys()


class TestValidation:
    def test_not_a_snapshot(self, tmp_path):
        path = tmp_path / "bogus.idx"
        path.write_bytes(b"not gzip at all")
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_wrong_format_field(self, tmp_path):
        path = tmp_path / "bogus.idx"
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps({"format": "something-else"}).encode())
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_wrong_version(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        with gzip.open(path, "rb") as handle:
            document = json.loads(handle.read())
        document["version"] = 99
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps(document).encode())
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_missing_field(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        with gzip.open(path, "rb") as handle:
            document = json.loads(handle.read())
        del document["deweys"]
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps(document).encode())
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_corrupt_dewey_depth(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        with gzip.open(path, "rb") as handle:
            document = json.loads(handle.read())
        document["deweys"][0][1] = [0, 0]
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps(document).encode())
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_duplicate_dewey(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        with gzip.open(path, "rb") as handle:
            document = json.loads(handle.read())
        document["deweys"][1][1] = document["deweys"][0][1]
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps(document).encode())
        with pytest.raises(SnapshotError):
            load_index(path)

    def test_inconsistent_component_mapping(self, built_index, tmp_path):
        path = tmp_path / "cars.idx"
        save_index(built_index, path)
        with gzip.open(path, "rb") as handle:
            document = json.loads(handle.read())
        # Two Hondas with different top-level components.
        document["deweys"][0][1][0] = 5
        with gzip.open(path, "wb") as handle:
            handle.write(json.dumps(document).encode())
        with pytest.raises(SnapshotError):
            load_index(path)
