"""Differential verification of ``algorithm="auto"``.

The planner is allowed to pick any diversity-preserving algorithm, but it
is never allowed to *change the answer*: an auto run must be bit-identical
(Dewey IDs and scores) to a fixed run of whichever algorithm it selected,
at the same index epoch.  These tests drive that property across the full
deployment matrix — scored/unscored x shards {1,2,4} x array/compressed
posting backends — with mutations interleaved between searches, plus:

* the forced-candidate differential: restricting auto's candidate set to a
  single algorithm must reproduce every one of the 5 fixed algorithms
  bit-for-bit (the auto dispatch path adds nothing and loses nothing);
* the serving-cache decision memo: cached auto answers stay identical to a
  cache-free engine, decisions are re-planned when the index epoch moves
  (the PR 7 plan-cache keying satellite), and separate ``k``/``scored``
  values get separate decision slots;
* the selection boundary: hand-built relations on either side of the
  paper's Figs. 5-8 crossover, where auto must take the cheap side and the
  Theorem 2 probe-bound counter must stay 0 either way.
"""

import random

import pytest

from repro import AUTO, DiversityEngine, Query, ServingCache, ShardedEngine
from repro.core.engine import ALGORITHMS
from repro.observability import use_registry
from repro.planner import DEFAULT_CANDIDATES

from .conftest import (
    COLORS,
    MAKES,
    MODELS,
    RANDOM_ORDERING,
    WORDS,
    random_query,
    random_relation,
)

SHARD_COUNTS = (1, 2, 4)
POSTING_BACKENDS = ("array", "compressed")


def _answers(result):
    """The bit-identity projection: (dewey, score) in result order."""
    return [(item.dewey, item.score) for item in result.items]


def _build_engine(relation, shards, backend):
    if shards == 1:
        return DiversityEngine.from_relation(
            relation, RANDOM_ORDERING, backend=backend
        )
    return ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=shards, backend=backend
    )


def _random_row(rng):
    return (
        rng.choice(MAKES),
        rng.choice(MODELS),
        rng.choice(COLORS),
        " ".join(rng.sample(WORDS, 2)),
    )


def _mutate(engine, rng):
    """One random insert or delete (bumps the index epoch)."""
    relation = engine.relation
    live = [rid for rid, _ in relation.iter_live()]
    if live and rng.random() < 0.5:
        engine.delete(rng.choice(live))
    else:
        engine.insert(_random_row(rng))


class TestAutoDifferential:
    """auto == the fixed algorithm it selected, across the whole matrix."""

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    @pytest.mark.parametrize("backend", POSTING_BACKENDS)
    @pytest.mark.parametrize("scored", [False, True])
    def test_auto_matches_selected_fixed(self, shards, backend, scored):
        rng = random.Random(1000 * shards + 10 * len(backend) + scored)
        relation = random_relation(rng, max_rows=60)
        with _build_engine(relation, shards, backend) as engine:
            for step in range(10):
                query = engine.prepare(random_query(rng, weighted=scored), scored)
                k = rng.randint(1, 8)
                auto = engine.execute(query, k, AUTO, scored)
                selected = auto.stats["algorithm_selected"]
                assert selected in DEFAULT_CANDIDATES
                assert auto.stats["algorithm_requested"] == "auto"
                fixed = engine.execute(query, k, selected, scored)
                assert _answers(auto) == _answers(fixed)
                if step % 2 == 0:
                    _mutate(engine, rng)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_sharded_plans_match_unsharded(self, shards):
        """Union posting views report global statistics, so every shard
        count must reach the same decision for the same query."""
        rng = random.Random(99)
        relation = random_relation(rng, max_rows=50)
        reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        with _build_engine(relation, shards, "array") as engine:
            for _ in range(8):
                query = reference.prepare(random_query(rng))
                k = rng.randint(1, 10)
                expected = reference.plan(query, k)
                actual = engine.plan(query, k)
                assert actual.algorithm == expected.algorithm
                assert actual.costs == pytest.approx(expected.costs)

    def test_search_accepts_auto_and_rejects_unknown(self, cars_engine):
        result = cars_engine.search("Make = 'Honda'", k=3, algorithm=AUTO)
        assert len(result) == 3
        with pytest.raises(ValueError, match="unknown algorithm"):
            cars_engine.search("Make = 'Honda'", k=3, algorithm="speedy")


class TestForcedCandidates:
    """Auto restricted to one candidate == that fixed algorithm, for all 5."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("scored", [False, True])
    def test_forced_candidate_is_bit_identical(self, algorithm, scored):
        rng = random.Random(ALGORITHMS.index(algorithm) * 2 + scored)
        relation = random_relation(rng, max_rows=40)
        engine = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        for _ in range(6):
            query = engine.prepare(random_query(rng, weighted=scored), scored)
            k = rng.randint(1, 6)
            decision = engine.plan(query, k, scored, candidates=(algorithm,))
            assert decision.algorithm == algorithm
            assert decision.reason == "forced"
            auto = engine.execute(query, k, AUTO, scored, decision=decision)
            fixed = engine.execute(query, k, algorithm, scored)
            assert _answers(auto) == _answers(fixed)

    def test_unknown_candidate_rejected(self, cars_engine):
        with pytest.raises(ValueError, match="unknown candidate"):
            cars_engine.plan("Make = 'Honda'", 3, candidates=("speedy",))
        with pytest.raises(ValueError, match="at least one candidate"):
            cars_engine.plan("Make = 'Honda'", 3, candidates=())


class TestServingCacheAuto:
    """Cached auto: identical answers, memoised decisions, epoch keying."""

    @staticmethod
    def _paired(rows=120, seed=5):
        rng = random.Random(seed)
        relation = random_relation(rng, max_rows=rows)
        rows_copy = [row for _, row in relation.iter_live()]
        cached = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        # A tiny result cache forces evictions, so same-epoch re-searches
        # miss the result cache and exercise the decision memo.
        cache = ServingCache(result_capacity=2)
        cached.attach_cache(cache)
        from repro import Relation, Schema

        twin_relation = Relation.from_rows(
            Schema.of(
                make="categorical", model="categorical",
                color="categorical", desc="text",
            ),
            rows_copy,
        )
        bare = DiversityEngine.from_relation(twin_relation, RANDOM_ORDERING)
        return cached, cache, bare, rng

    def test_cached_auto_identical_to_bare_engine(self):
        cached, cache, bare, rng = self._paired()
        queries = [random_query(rng) for _ in range(6)]
        for round_number in range(3):
            for sweep in range(2):  # second sweep re-misses evicted results
                for query in queries:
                    for k in (3, 7):
                        hot = cached.search(query, k, algorithm=AUTO)
                        cold = bare.search(query, k, algorithm=AUTO)
                        assert _answers(hot) == _answers(cold)
            row = _random_row(rng)
            cached.insert(row)
            bare.insert(row)
        assert cache.stats.decision_hits > 0

    def test_decision_replanned_when_statistics_change(self):
        """The PR 7 plan-cache keying satellite: mutating the relation must
        invalidate the memoised decision — here the mutation flips the
        cheapest algorithm, so serving a stale decision would be visible.
        """
        from repro import Relation, Schema

        schema = Schema.of(make="categorical", model="categorical")
        rows = [("A", f"m{i % 7}") for i in range(300)]
        rows += [("B", f"m{i % 7}") for i in range(5)]
        relation = Relation.from_rows(schema, rows)
        engine = DiversityEngine.from_relation(relation, ["make", "model"])
        cache = ServingCache()
        engine.attach_cache(cache)
        query = Query.scalar("make", "A")

        first = engine.search(query, 10, algorithm=AUTO)
        # 300 matches, k=10: the probe bound (2k+1 = 21) crushes the scan.
        assert first.stats["algorithm_selected"] == "probe"
        assert cache.stats.decision_misses == 1

        # Same query, same epoch: decision served from the memo.  Vary k so
        # the *result* cache misses and the decision path actually runs.
        engine.search(query, 9, algorithm=AUTO)
        assert cache.stats.decision_misses == 2  # (k=9, unscored) is new
        engine.search(query, 9, algorithm=AUTO)
        engine.search(query, 9, algorithm=AUTO)
        # Result-cache hits short-circuit before the decision memo; the
        # decision counters must not move.
        assert cache.stats.decision_hits == 0
        assert cache.stats.decision_replans == 0

        # Mutate until make='A' is rare: the statistics now favour a scan.
        for rid, row in list(relation.iter_live()):
            if row[0] == "A" and relation.live_count > 8:
                engine.delete(rid)
        replanned = engine.search(query, 10, algorithm=AUTO)
        assert replanned.stats["algorithm_selected"] != "probe"
        assert cache.stats.decision_replans == 1

    def test_distinct_k_and_scored_get_distinct_decisions(self):
        cached, cache, _, rng = self._paired(rows=40, seed=11)
        query = random_query(rng)
        cached.search(query, 3, algorithm=AUTO)
        cached.search(query, 4, algorithm=AUTO)
        cached.search(query, 3, algorithm=AUTO, scored=True)
        assert cache.stats.decision_misses == 3
        assert cache.stats.decision_hits == 0

    def test_serving_engine_auto_end_to_end(self):
        from repro import ServingEngine
        from repro.data.paper_example import figure1_ordering, figure1_relation

        with ServingEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2
        ) as serving:
            report = serving.engine.search("Make = 'Honda'", 4, algorithm=AUTO)
            again = serving.search("Make = 'Honda'", 4, algorithm=AUTO)
            assert _answers(report) == _answers(again)
            assert again.stats["cache_hit"] == 1
            batch = serving.search_many(
                ["Make = 'Honda'", "Color = 'Red'"], k=3, algorithm=AUTO
            )
            assert batch.queries == 2
            assert all(len(r) > 0 for r in batch.results)


def _two_value_relation(popular: int, rare: int):
    """``make='big'`` matches ``popular`` rows, ``make='small'`` ``rare``."""
    from repro import Relation, Schema

    schema = Schema.of(make="categorical", model="categorical")
    rows = [("big", f"m{i % 11}") for i in range(popular)]
    rows += [("small", f"m{i % 11}") for i in range(rare)]
    return Relation.from_rows(schema, rows)


class TestSelectionBoundary:
    """Hand-built relations on both sides of the Figs. 5-8 crossover."""

    def _run(self, query_value: str, k: int):
        relation = _two_value_relation(popular=400, rare=40)
        engine = DiversityEngine.from_relation(relation, ["make", "model"])
        with use_registry() as registry:
            query = engine.prepare(Query.scalar("make", query_value))
            decision = engine.plan(query, k, candidates=("onepass", "probe"))
            result = engine.execute(query, k, AUTO, decision=decision)
        return decision, result, registry

    def test_low_k_high_selectivity_picks_probe(self):
        """400 matches, k=3: 2k+1 = 7 probes vs a several-hundred-row scan."""
        decision, result, registry = self._run("big", k=3)
        assert decision.algorithm == "probe"
        assert decision.costs["probe"] < decision.costs["onepass"]
        assert result.stats["probe_bound_exceeded"] == 0
        assert registry.value("repro_probe_bound_violations_total") == 0
        assert registry.value(
            "repro_plan_bound_violations_total", algorithm="probe"
        ) == 0

    def test_high_k_low_selectivity_picks_onepass(self):
        """40 matches, k=30: 2k+1 = 61 probes lose to a <=40-visit scan."""
        decision, result, registry = self._run("small", k=30)
        assert decision.algorithm == "onepass"
        assert decision.costs["onepass"] < decision.costs["probe"]
        assert result.stats["scan_passes"] == 1
        assert registry.value("repro_probe_bound_violations_total") == 0
        assert registry.value(
            "repro_onepass_scan_violations_total", mode="unscored"
        ) == 0
        assert registry.value(
            "repro_plan_bound_violations_total", algorithm="onepass"
        ) == 0

    def test_default_candidates_never_pick_worse_than_probe(self):
        """With the full candidate set, the chosen plan never prices above
        the probe baseline (probe is always available)."""
        for value, k in (("big", 3), ("small", 30), ("big", 50), ("small", 1)):
            relation = _two_value_relation(popular=400, rare=40)
            engine = DiversityEngine.from_relation(relation, ["make", "model"])
            query = engine.prepare(Query.scalar("make", value))
            decision = engine.plan(query, k)
            assert decision.costs[decision.algorithm] <= decision.costs["probe"]
