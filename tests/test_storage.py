"""Tests for the storage substrate: schemas, relations, catalog, CSV I/O."""

import io

import pytest

from repro.storage.catalog import Catalog, CatalogError
from repro.storage.csvio import (
    from_csv_string,
    read_csv,
    to_csv_string,
    write_csv,
)
from repro.storage.relation import Relation
from repro.storage.schema import Attribute, AttributeKind, Schema, SchemaError


class TestAttribute:
    def test_categorical_coerces_to_str(self):
        attribute = Attribute("make")
        assert attribute.coerce(2007) == "2007"

    def test_numeric_accepts_int_and_float(self):
        attribute = Attribute("year", AttributeKind.NUMERIC)
        assert attribute.coerce(2007) == 2007
        assert attribute.coerce(3.5) == 3.5

    def test_numeric_parses_strings(self):
        attribute = Attribute("year", AttributeKind.NUMERIC)
        assert attribute.coerce("2007") == 2007
        assert attribute.coerce("3.5") == 3.5

    def test_numeric_rejects_garbage(self):
        attribute = Attribute("year", AttributeKind.NUMERIC)
        with pytest.raises(TypeError):
            attribute.coerce("not-a-number")

    def test_numeric_rejects_bool(self):
        attribute = Attribute("year", AttributeKind.NUMERIC)
        with pytest.raises(TypeError):
            attribute.coerce(True)

    def test_null_rejected(self):
        with pytest.raises(TypeError):
            Attribute("make").coerce(None)


class TestSchema:
    def test_of_shorthand(self):
        schema = Schema.of(make="categorical", year="numeric", desc="text")
        assert schema.names == ("make", "year", "desc")
        assert schema.attribute("desc").kind is AttributeKind.TEXT

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a"), Attribute("a")])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_position_and_contains(self):
        schema = Schema.of(a="categorical", b="numeric")
        assert schema.position("b") == 1
        assert "a" in schema and "z" not in schema
        with pytest.raises(SchemaError):
            schema.position("z")

    def test_coerce_row_from_sequence(self):
        schema = Schema.of(make="categorical", year="numeric")
        assert schema.coerce_row(["Honda", "2007"]) == ("Honda", 2007)

    def test_coerce_row_from_mapping(self):
        schema = Schema.of(make="categorical", year="numeric")
        assert schema.coerce_row({"year": 2007, "make": "Honda"}) == ("Honda", 2007)

    def test_coerce_row_missing_attribute(self):
        schema = Schema.of(make="categorical", year="numeric")
        with pytest.raises(SchemaError):
            schema.coerce_row({"make": "Honda"})

    def test_coerce_row_unknown_attribute(self):
        schema = Schema.of(make="categorical")
        with pytest.raises(SchemaError):
            schema.coerce_row({"make": "Honda", "bogus": 1})

    def test_coerce_row_wrong_arity(self):
        schema = Schema.of(make="categorical", year="numeric")
        with pytest.raises(SchemaError):
            schema.coerce_row(["Honda"])

    def test_equality_and_hash(self):
        a = Schema.of(x="categorical")
        b = Schema.of(x="categorical")
        assert a == b and hash(a) == hash(b)
        assert a != Schema.of(x="numeric")


class TestRelation:
    @pytest.fixture
    def relation(self):
        schema = Schema.of(make="categorical", year="numeric")
        return Relation.from_rows(
            schema,
            [("Honda", 2007), ("Toyota", 2006), ("Honda", 2006)],
            name="cars",
        )

    def test_len_and_getitem(self, relation):
        assert len(relation) == 3
        assert relation[0] == ("Honda", 2007)

    def test_insert_returns_rid(self, relation):
        rid = relation.insert({"make": "Ford", "year": 2005})
        assert rid == 3
        assert relation.value(rid, "make") == "Ford"

    def test_row_dict(self, relation):
        assert relation.row_dict(1) == {"make": "Toyota", "year": 2006}

    def test_scan_with_predicate(self, relation):
        rids = list(relation.scan(lambda row: row[0] == "Honda"))
        assert rids == [0, 2]

    def test_scan_all(self, relation):
        assert list(relation.scan()) == [0, 1, 2]

    def test_distinct_values_first_appearance_order(self, relation):
        assert relation.distinct_values("make") == ["Honda", "Toyota"]

    def test_project(self, relation):
        assert relation.project(["year"]) == [(2007,), (2006,), (2006,)]

    def test_validate_attribute(self, relation):
        relation.validate_attribute("make")
        with pytest.raises(SchemaError):
            relation.validate_attribute("bogus")


class TestCatalog:
    def test_register_and_lookup(self, cars):
        catalog = Catalog()
        key = catalog.register(cars, ordering=["Make", "Model"])
        assert key == "Cars"
        assert catalog.relation("Cars") is cars
        assert catalog.default_ordering("Cars") == ("Make", "Model")
        assert "Cars" in catalog and len(catalog) == 1

    def test_register_without_ordering(self, cars):
        catalog = Catalog()
        catalog.register(cars, name="inventory")
        assert catalog.default_ordering("inventory") is None

    def test_duplicate_rejected(self, cars):
        catalog = Catalog()
        catalog.register(cars)
        with pytest.raises(CatalogError):
            catalog.register(cars)

    def test_bad_ordering_attribute_rejected(self, cars):
        catalog = Catalog()
        with pytest.raises(Exception):
            catalog.register(cars, ordering=["NoSuchAttr"])

    def test_unregister(self, cars):
        catalog = Catalog()
        catalog.register(cars)
        catalog.unregister("Cars")
        assert "Cars" not in catalog
        with pytest.raises(CatalogError):
            catalog.relation("Cars")

    def test_unknown_lookups_raise(self):
        catalog = Catalog()
        with pytest.raises(CatalogError):
            catalog.relation("nope")
        with pytest.raises(CatalogError):
            catalog.default_ordering("nope")
        with pytest.raises(CatalogError):
            catalog.unregister("nope")


class TestCsvIO:
    def test_roundtrip_string(self, cars):
        text = to_csv_string(cars)
        back = from_csv_string(text, name="Cars")
        assert back.schema == cars.schema
        assert list(back) == list(cars)

    def test_roundtrip_file(self, cars, tmp_path):
        path = tmp_path / "cars.csv"
        write_csv(cars, path)
        back = read_csv(path)
        assert list(back) == list(cars)

    def test_header_encodes_kinds(self, cars):
        header = to_csv_string(cars).splitlines()[0]
        assert "Year:numeric" in header
        assert "Description:text" in header

    def test_empty_csv_rejected(self):
        with pytest.raises(ValueError):
            from_csv_string("")

    def test_bad_kind_rejected(self):
        buffer = io.StringIO("a:bogus\n1\n")
        with pytest.raises(ValueError):
            read_csv(buffer)

    def test_untyped_header_defaults_to_categorical(self):
        back = from_csv_string("make\nHonda\n")
        assert back.schema.attribute("make").kind is AttributeKind.CATEGORICAL
        assert back[0] == ("Honda",)
