"""The differential crash matrix.

A profiling pass runs a scripted mutation workload with an un-armed
:class:`CrashInjector` to enumerate every *(crash point, occurrence)* pair
the write path passes.  The matrix then re-runs the workload once per
pair, killing the writer exactly there (with the point's realistic disk
damage applied first), recovers the data directory, and asserts the
recovered state is **bit-identical to the pre-crash or the post-crash
reference state — never anything in between**.  "State" means the index
epoch, every Dewey assignment, the live and deleted rows, and the
answers of all five diversity algorithms (scored and unscored) on fixed
queries.

Set ``REPRO_CRASH_MAX_OCC=N`` to cap occurrences per point (CI smoke).
"""

import os

import pytest

from repro import DiversityEngine
from repro.core.engine import ALGORITHMS
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.durability import (
    CrashInjector,
    RecoveryError,
    SimulatedCrash,
    create_sharded_store,
    create_store,
    recover,
)
from repro.durability.crash import CRASH_POINTS
from repro.durability.store import WAL_NAME
from repro.durability.wal import MAGIC
from repro.index.inverted import InvertedIndex
from repro.sharding import ShardedIndex

#: 0 means "every occurrence the profiling pass found".
MAX_OCC = int(os.environ.get("REPRO_CRASH_MAX_OCC", "0"))

#: The scripted workload: inserts and removes interleaved so WAL replay
#: exercises both ops, including the removal of a row (rid 15) that only
#: ever existed through the log.
STEPS = [
    ("insert", ("Tesla", "ModelS", "Red", 2008, "rare electric clean")),
    ("insert", ("Kia", "Rio", "Green", 2006, "cheap commuter")),
    ("remove", 1),
    ("insert", ("Honda", "Fit", "Orange", 2008, "low miles")),
    ("insert", ("Acura", "TSX", "Silver", 2007, "one owner")),
    ("remove", 15),
    ("insert", ("Ford", "Focus", "Blue", 2005, "new tires")),
    ("insert", ("Honda", "Prelude", "Black", 2007, "rare manual")),
]

QUERIES = [
    "Make = 'Honda'",
    "Color = 'Green' OR Description CONTAINS 'miles'",
]


def state_signature(index):
    """Everything recovery must reproduce, hashed down to comparables."""
    relation = index.relation
    engine = DiversityEngine(index)
    answers = tuple(
        tuple(engine.search(query, k=4, algorithm=algorithm, scored=scored).deweys)
        for query in QUERIES
        for algorithm in ALGORITHMS
        for scored in (False, True)
    )
    return (
        index.epoch,
        tuple(sorted(
            (rid, index.dewey.dewey_of(rid)) for rid in index.dewey.iter_rids()
        )),
        tuple(tuple(row) for row in relation),
        tuple(relation.deleted_rids()),
        answers,
    )


def apply_step(target, relation, step):
    op, arg = step
    if op == "insert":
        target.insert(relation.insert(arg))
    else:
        relation.delete(arg)
        target.remove(arg)


def run_until_crash(target, relation, steps):
    """Apply ``steps``; return (steps fully completed, crashed?)."""
    completed = 0
    try:
        for step in steps:
            apply_step(target, relation, step)
            completed += 1
    except SimulatedCrash:
        return completed, True
    return completed, False


# ----------------------------------------------------------------------
# Single-store matrix
# ----------------------------------------------------------------------
def _build_single(data_dir):
    relation = figure1_relation()
    index = InvertedIndex.build(relation, figure1_ordering())
    store = create_store(index, data_dir, snapshot_every=3)
    return store, relation, index


@pytest.fixture(scope="module")
def single_references(tmp_path_factory):
    """Signature after store creation and after every workload step."""
    store, relation, index = _build_single(
        tmp_path_factory.mktemp("refs") / "store"
    )
    references = [state_signature(index)]
    for step in STEPS:
        apply_step(store, relation, step)
        references.append(state_signature(index))
    store.close()
    return references


@pytest.fixture(scope="module")
def single_profile(tmp_path_factory):
    """How often the clean workload passes each crash point."""
    store, relation, _ = _build_single(
        tmp_path_factory.mktemp("profile") / "store"
    )
    injector = CrashInjector()
    store.arm(injector)
    completed, crashed = run_until_crash(store, relation, STEPS)
    store.close()
    assert not crashed and completed == len(STEPS)
    return dict(injector.reached)


def _occurrences(profile, point):
    count = profile.get(point, 0)
    assert count > 0, (
        f"workload never reaches {point}; the matrix has a blind spot"
    )
    return range(1, min(count, MAX_OCC) + 1 if MAX_OCC else count + 1)


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_single_store_matrix(point, single_references, single_profile, tmp_path):
    for occurrence in _occurrences(single_profile, point):
        data_dir = tmp_path / f"{point}-{occurrence}"
        store, relation, _ = _build_single(data_dir)
        store.arm(CrashInjector(point, occurrence=occurrence))
        completed, crashed = run_until_crash(store, relation, STEPS)
        assert crashed, f"{point} #{occurrence} did not fire"

        recovered = recover(data_dir)
        got = state_signature(recovered.index)
        allowed = {
            single_references[completed],
            single_references[completed + 1],
        }
        assert got in allowed, (
            f"{point} #{occurrence}: recovered state matches neither the "
            f"pre- nor post-crash reference (crash mid-step {completed + 1})"
        )
        recovered.close()


# ----------------------------------------------------------------------
# Sharded matrix (smaller: shared injector across both shards' WALs)
# ----------------------------------------------------------------------
SHARDED_STEPS = STEPS[:6]
SHARDED_MAX_OCC = MAX_OCC or 2


def _build_sharded(data_dir):
    relation = figure1_relation()
    index = ShardedIndex.build(relation, figure1_ordering(), shards=2)
    create_sharded_store(index, data_dir, snapshot_every=2)
    return index, relation


@pytest.fixture(scope="module")
def sharded_references(tmp_path_factory):
    index, relation = _build_sharded(tmp_path_factory.mktemp("srefs") / "c")
    references = [state_signature(index)]
    for step in SHARDED_STEPS:
        apply_step(index, relation, step)
        references.append(state_signature(index))
    for shard in index.shards:
        shard.close()
    return references


@pytest.fixture(scope="module")
def sharded_profile(tmp_path_factory):
    index, relation = _build_sharded(tmp_path_factory.mktemp("sprof") / "c")
    injector = CrashInjector()
    for shard in index.shards:
        shard.arm(injector)
    completed, crashed = run_until_crash(index, relation, SHARDED_STEPS)
    for shard in index.shards:
        shard.close()
    assert not crashed and completed == len(SHARDED_STEPS)
    return dict(injector.reached)


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_sharded_matrix(point, sharded_references, sharded_profile, tmp_path):
    count = sharded_profile.get(point, 0)
    assert count > 0, f"sharded workload never reaches {point}"
    for occurrence in range(1, min(count, SHARDED_MAX_OCC) + 1):
        data_dir = tmp_path / f"{point}-{occurrence}"
        index, relation = _build_sharded(data_dir)
        injector = CrashInjector(point, occurrence=occurrence)
        for shard in index.shards:
            shard.arm(injector)
        completed, crashed = run_until_crash(index, relation, SHARDED_STEPS)
        assert crashed, f"{point} #{occurrence} did not fire (sharded)"

        recovered = recover(data_dir)
        got = state_signature(recovered)
        allowed = {
            sharded_references[completed],
            sharded_references[completed + 1],
        }
        assert got in allowed, (
            f"sharded {point} #{occurrence}: recovered state matches "
            f"neither reference (crash mid-step {completed + 1})"
        )


# ----------------------------------------------------------------------
# Damage that is NOT a crash signature must be refused, loudly.
# ----------------------------------------------------------------------
def test_corruption_before_tail_raises_structured_error(tmp_path):
    store, relation, _ = _build_single(tmp_path / "store")
    for step in STEPS[:2]:  # two durable records, no snapshot cycle yet
        apply_step(store, relation, step)
    store.close()

    wal_path = tmp_path / "store" / WAL_NAME
    data = bytearray(wal_path.read_bytes())
    data[len(MAGIC) + 12] ^= 0x01  # inside record 1 of 2: before the tail
    wal_path.write_bytes(bytes(data))

    with pytest.raises(RecoveryError) as excinfo:
        recover(tmp_path / "store")
    error = excinfo.value
    assert str(wal_path.parent) in str(error.path)
    assert "mid-log" in error.reason
