"""Unit tests for Dewey identifier arithmetic (Section III-B operators)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import dewey as dw


class TestMakeDewey:
    def test_builds_tuple(self):
        assert dw.make_dewey([0, 3, 1]) == (0, 3, 1)

    def test_coerces_to_int(self):
        assert dw.make_dewey(["2", 1.0]) == (2, 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            dw.make_dewey([0, -1])

    def test_rejects_too_large(self):
        with pytest.raises(ValueError):
            dw.make_dewey([dw.MAX_COMPONENT + 1])


class TestBounds:
    def test_zeros(self):
        assert dw.zeros(3) == (0, 0, 0)

    def test_maxes(self):
        assert dw.maxes(2) == (dw.MAX_COMPONENT,) * 2

    def test_zero_depth_rejected(self):
        with pytest.raises(ValueError):
            dw.zeros(0)
        with pytest.raises(ValueError):
            dw.maxes(0)


class TestNextId:
    def test_paper_example(self):
        """nextId(0.3.1.0.0, 2, LEFT) = 0.4.0.0.0 (Section III-B)."""
        assert dw.next_id((0, 3, 1, 0, 0), 2, dw.LEFT) == (0, 4, 0, 0, 0)

    def test_left_at_level_one(self):
        assert dw.next_id((0, 0, 0), 1, dw.LEFT) == (1, 0, 0)

    def test_left_at_last_level(self):
        assert dw.next_id((2, 5, 7), 3, dw.LEFT) == (2, 5, 8)

    def test_right_decrements_and_fills_max(self):
        assert dw.next_id((0, 3, 1, 0, 0), 2, dw.RIGHT) == (
            0,
            2,
            dw.MAX_COMPONENT,
            dw.MAX_COMPONENT,
            dw.MAX_COMPONENT,
        )

    def test_right_at_zero_component_is_none(self):
        assert dw.next_id((0, 0, 5), 2, dw.RIGHT) is None

    def test_level_out_of_range(self):
        with pytest.raises(ValueError):
            dw.next_id((0, 0), 3, dw.LEFT)
        with pytest.raises(ValueError):
            dw.next_id((0, 0), 0, dw.LEFT)

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            dw.next_id((0, 0), 1, dw.MIDDLE)

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6),
        st.data(),
    )
    def test_left_is_strictly_greater(self, components, data):
        dewey = tuple(components)
        level = data.draw(st.integers(min_value=1, max_value=len(dewey)))
        assert dw.next_id(dewey, level, dw.LEFT) > dewey

    @given(
        st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=6),
        st.data(),
    )
    def test_right_is_strictly_smaller_or_none(self, components, data):
        dewey = tuple(components)
        level = data.draw(st.integers(min_value=1, max_value=len(dewey)))
        result = dw.next_id(dewey, level, dw.RIGHT)
        if dewey[level - 1] == 0:
            assert result is None
        else:
            assert result < dewey


class TestSuccessorPredecessor:
    def test_successor(self):
        assert dw.successor((0, 1, 2)) == (0, 1, 3)

    def test_predecessor_simple(self):
        assert dw.predecessor((0, 1, 2)) == (0, 1, 1)

    def test_predecessor_borrows(self):
        assert dw.predecessor((1, 0, 0)) == (
            0,
            dw.MAX_COMPONENT,
            dw.MAX_COMPONENT,
        )

    def test_predecessor_of_zeros_is_none(self):
        assert dw.predecessor((0, 0, 0)) is None

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=5))
    def test_successor_strictly_increases(self, components):
        dewey = tuple(components)
        assert dw.successor(dewey) > dewey

    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=5))
    def test_no_id_between_dewey_and_successor(self, components):
        """successor is the immediate next id of the same depth."""
        dewey = tuple(components)
        nxt = dw.successor(dewey)
        assert nxt[:-1] == dewey[:-1] and nxt[-1] == dewey[-1] + 1


class TestPrefixesAndRegions:
    def test_is_prefix(self):
        assert dw.is_prefix((0, 2), (0, 2, 1, 0))
        assert not dw.is_prefix((0, 1), (0, 2, 1, 0))
        assert dw.is_prefix((), (0, 2))

    def test_prefix_longer_than_id(self):
        assert not dw.is_prefix((0, 1, 2, 3), (0, 1))

    def test_common_prefix_len(self):
        assert dw.common_prefix_len((0, 1, 2), (0, 1, 5)) == 2
        assert dw.common_prefix_len((3, 1), (0, 1)) == 0
        assert dw.common_prefix_len((1, 2), (1, 2)) == 2

    def test_region_bounds(self):
        low, high = dw.region_bounds((0,), 3)
        assert low == (0, 0, 0)
        assert high == (0, dw.MAX_COMPONENT, dw.MAX_COMPONENT)

    def test_region_bounds_root(self):
        low, high = dw.region_bounds((), 2)
        assert low == dw.zeros(2) and high == dw.maxes(2)

    def test_region_bounds_rejects_long_prefix(self):
        with pytest.raises(ValueError):
            dw.region_bounds((0, 1, 2), 2)

    def test_in_region(self):
        assert dw.in_region((0, 2, 1), (0, 2))
        assert not dw.in_region((0, 3, 1), (0, 2))

    @given(
        st.lists(st.integers(min_value=0, max_value=9), min_size=0, max_size=3),
        st.lists(st.integers(min_value=0, max_value=9), min_size=4, max_size=4),
    )
    def test_region_bounds_bracket_members(self, prefix, suffix):
        depth = len(prefix) + 4
        member = tuple(prefix) + tuple(suffix)
        low, high = dw.region_bounds(tuple(prefix), depth)
        assert low <= member <= high


class TestFormatting:
    def test_format(self):
        assert dw.format_dewey((0, 3, dw.MAX_COMPONENT)) == "0.3.*"

    def test_parse(self):
        assert dw.parse_dewey("0.3.*") == (0, 3, dw.MAX_COMPONENT)

    @given(st.lists(st.integers(min_value=0, max_value=99), min_size=1, max_size=6))
    def test_roundtrip(self, components):
        dewey = tuple(components)
        assert dw.parse_dewey(dw.format_dewey(dewey)) == dewey


class TestDirections:
    def test_toggle(self):
        assert dw.toggle(dw.LEFT) == dw.RIGHT
        assert dw.toggle(dw.RIGHT) == dw.LEFT

    def test_toggle_middle_rejected(self):
        with pytest.raises(ValueError):
            dw.toggle(dw.MIDDLE)

    def test_validate_direction(self):
        dw.validate_direction(dw.LEFT)
        dw.validate_direction(dw.RIGHT)
        with pytest.raises(ValueError):
            dw.validate_direction("UP")
