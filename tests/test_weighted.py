"""Tests for the weighted-diversity extension (Section VII)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diversify import diverse_subset
from repro.core.weighted import (
    WeightedDiversifier,
    is_weighted_balanced,
    weighted_waterfill,
)
from repro.data.paper_example import figure1_ordering
from repro.index.dewey_index import DeweyIndex
from repro.storage.relation import Relation
from repro.storage.schema import Schema


class TestWeightedWaterfill:
    def test_uniform_weights_match_unweighted(self):
        assert weighted_waterfill(6, [5, 5, 5], [1, 1, 1]) == [2, 2, 2]

    def test_heavier_bin_gets_more(self):
        allocation = weighted_waterfill(6, [10, 10], [2.0, 1.0])
        assert allocation[0] > allocation[1]
        assert sum(allocation) == 6

    def test_capacity_respected(self):
        allocation = weighted_waterfill(6, [1, 10], [100.0, 1.0])
        assert allocation == [1, 5]

    def test_infeasible(self):
        with pytest.raises(ValueError):
            weighted_waterfill(5, [2, 2], [1, 1])

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            weighted_waterfill(1, [2], [0.0])

    def test_misaligned(self):
        with pytest.raises(ValueError):
            weighted_waterfill(1, [2], [1.0, 1.0])

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=4),
        st.lists(st.sampled_from([0.5, 1.0, 2.0, 3.0]), min_size=4, max_size=4),
        st.data(),
    )
    def test_optimal_vs_bruteforce(self, capacities, weights, data):
        weights = weights[: len(capacities)]
        budget = data.draw(st.integers(min_value=0, max_value=sum(capacities)))
        allocation = weighted_waterfill(budget, capacities, weights)
        objective = sum(n * n / w for n, w in zip(allocation, weights))
        best = min(
            sum(n * n / w for n, w in zip(combo, weights))
            for combo in itertools.product(*(range(c + 1) for c in capacities))
            if sum(combo) == budget
        )
        assert objective == pytest.approx(best)
        assert is_weighted_balanced(allocation, capacities, weights)


class TestIsWeightedBalanced:
    def test_uniform_matches_unweighted_notion(self):
        assert is_weighted_balanced([2, 1], [5, 5], [1, 1])
        assert not is_weighted_balanced([3, 0], [5, 5], [1, 1])

    def test_weights_excuse_imbalance(self):
        # Weight 4 vs 1: (3, 1) has marginal saving (2*3-1)/4 = 1.25 vs
        # receiver cost (2*1+1)/1 = 3 -> balanced.
        assert is_weighted_balanced([3, 1], [5, 5], [4.0, 1.0])

    def test_overflow_rejected(self):
        assert not is_weighted_balanced([3], [2], [1.0])


def build_diversifier(weights):
    schema = Schema.of(
        Make="categorical", Model="categorical", Color="categorical",
        Year="numeric", Description="text",
    )
    rows = []
    for make in ("Honda", "Tesla"):
        for i in range(6):
            rows.append((make, f"m{i}", "Black", 2007, "low miles"))
    relation = Relation.from_rows(schema, rows)
    index = DeweyIndex.build(relation, figure1_ordering())
    return relation, index, WeightedDiversifier(index, weights)


class TestWeightedDiversifier:
    def test_section_vii_example(self):
        """Higher weight on Honda -> more Hondas than Teslas in the result."""
        relation, index, diversifier = build_diversifier(
            {("Make", "Honda"): 3.0, ("Make", "Tesla"): 1.0}
        )
        everything = index.all_deweys()
        chosen = diversifier.select(everything, 8)
        hondas = sum(1 for d in chosen if index.values_of(d)[0] == "Honda")
        assert hondas > 8 - hondas
        assert diversifier.is_weighted_diverse(chosen, everything)

    def test_uniform_weights_reduce_to_unweighted(self):
        relation, index, diversifier = build_diversifier({})
        everything = index.all_deweys()
        for k in (1, 3, 6, 9):
            weighted = diversifier.select(everything, k)
            unweighted = diverse_subset(everything, k)
            # Same per-make counts (identity may differ on ties).
            count = lambda sel: sorted(
                sum(1 for d in sel if d[0] == make) for make in (0, 1)
            )
            assert count(weighted) == count(unweighted)

    def test_k_bounds(self):
        relation, index, diversifier = build_diversifier({})
        everything = index.all_deweys()
        assert diversifier.select(everything, 0) == []
        assert diversifier.select(everything, 99) == everything

    def test_checker_rejects_skew_against_weights(self):
        relation, index, diversifier = build_diversifier(
            {("Make", "Honda"): 5.0}
        )
        everything = index.all_deweys()
        teslas = [d for d in everything if index.values_of(d)[0] == "Tesla"]
        hondas = [d for d in everything if index.values_of(d)[0] == "Honda"]
        # 1 Honda + 5 Teslas is badly unbalanced when Honda weighs 5x.
        skewed = hondas[:1] + teslas[:5]
        assert not diversifier.is_weighted_diverse(skewed, everything)

    def test_weight_of_uniqueness_level_is_one(self):
        relation, index, diversifier = build_diversifier({})
        assert diversifier.weight_of(5, (0, 0, 0, 0, 0), 0) == 1.0
