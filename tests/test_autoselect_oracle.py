"""Oracle-regret gate for ``algorithm="auto"``.

Races auto against every fixed diversity-preserving algorithm over the
standard mixed workload mix (autos match-all, narrow big-k, scored,
disjunctive auctions, Zipf-repeated — see
``repro.bench.autoselect.WORKLOAD_MIX``) and asserts the ISSUE's
acceptance bar: auto's total wall-clock within 1.05x of the best *single*
fixed algorithm across the whole mix.  The full-scale version of this
harness is ``benchmarks/bench_autoselect.py``.

The mix is built so no fixed algorithm wins everywhere; the per-workload
assertions below pin that structure, which is what makes the aggregate
gate meaningful rather than vacuously satisfied by "always pick probe".
"""

import math

import pytest

from repro.bench.autoselect import mixed_workloads, race_mix, summarise
from repro.observability import use_registry
from repro.planner import DEFAULT_CANDIDATES, total_regret

ROWS = 1500
QUERIES = 25
REPEATS = 3
REGRET_CEILING = 1.05


@pytest.fixture(scope="module")
def raced():
    """One timed race of the whole mix, shared by every assertion."""
    workloads = mixed_workloads(rows=ROWS, queries=QUERIES, seed=1)
    with use_registry() as registry:
        reports = race_mix(workloads, repeats=REPEATS, registry=registry)
    return reports, registry


class TestOracleRegret:
    def test_total_regret_within_ceiling(self, raced):
        reports, _ = raced
        summary = total_regret(reports)
        assert summary["best_fixed"] in DEFAULT_CANDIDATES
        assert summary["regret_ratio"] <= REGRET_CEILING, (
            f"auto total {summary['auto_seconds']:.4f}s vs best fixed "
            f"({summary['best_fixed']}) {summary['best_fixed_seconds']:.4f}s "
            f"-> ratio {summary['regret_ratio']}"
        )

    def test_mix_has_no_universal_fixed_winner(self, raced):
        """Sanity of the gate itself: the per-workload oracle is not the
        same algorithm everywhere, so a constant planner cannot tie auto
        by construction."""
        reports, _ = raced
        oracles = {report.best_fixed for report in reports}
        assert len(oracles) >= 2, f"degenerate mix, oracle always {oracles}"

    def test_auto_adapts_choices_across_mix(self, raced):
        reports, _ = raced
        chosen = set()
        for report in reports:
            assert sum(report.choices.values()) == QUERIES
            chosen.update(report.choices)
        assert len(chosen) >= 2, f"auto chose {chosen} for every workload"
        assert chosen <= set(DEFAULT_CANDIDATES)

    def test_per_workload_regret_is_bounded(self, raced):
        """Per-workload oracles are stricter than the aggregate gate; allow
        slack for timing noise at this small scale, but auto must never
        catastrophically lose a single regime (that is the failure mode
        cost-model bugs produce: e.g. probing a million-row scan regime)."""
        reports, _ = raced
        for report in reports:
            assert report.regret_ratio <= 2.0, (
                f"{report.name}: auto {report.auto_seconds:.4f}s vs "
                f"{report.best_fixed} {report.best_fixed_seconds:.4f}s"
            )

    def test_regret_exported_through_registry(self, raced):
        reports, registry = raced
        for report in reports:
            hist = registry.find("repro_plan_regret_ms", workload=report.name)
            assert hist is not None
            assert hist.count == 1
            assert math.isclose(
                hist.sum, report.regret_seconds * 1000.0, abs_tol=1e-6
            )
        races = sum(
            counter.value
            for (name, _), counter in registry._counters.items()
            if name == "repro_plan_races_total"
        )
        assert races == len(reports) * len(DEFAULT_CANDIDATES)

    def test_summary_shape(self, raced):
        reports, _ = raced
        summary = summarise(reports)
        assert len(summary["workloads"]) == len(reports)
        assert summary["races"] == len(reports) * len(DEFAULT_CANDIDATES)
        assert 0 <= summary["wins"] <= summary["races"]
        for entry in summary["workloads"]:
            assert set(entry["fixed_seconds"]) == set(DEFAULT_CANDIDATES)
            assert entry["regret_ratio"] > 0
