"""Tests for the write-ahead log: framing, checksums, torn tails, fsync."""

import struct

import pytest

from repro.durability.errors import WALCorruptionError, WALError
from repro.durability.wal import (
    MAGIC,
    WriteAheadLog,
    encode_frame,
    insert_record,
    read_wal,
    remove_record,
)


def _records(n, start_seq=1):
    return [
        insert_record(start_seq + i, i, ["Make", "Model", 2007 + i], [i, 0])
        for i in range(n)
    ]


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "wal.log"


class TestFraming:
    def test_roundtrip(self, wal_path):
        records = _records(5) + [remove_record(6, 2, [2, 0])]
        with WriteAheadLog.create(wal_path) as wal:
            for record in records:
                wal.append(record)
        scan = read_wal(wal_path)
        assert scan.records == records
        assert not scan.torn
        assert scan.valid_end == scan.file_size

    def test_empty_log(self, wal_path):
        WriteAheadLog.create(wal_path).close()
        scan = read_wal(wal_path)
        assert scan.records == []
        assert scan.valid_end == len(MAGIC)

    def test_magic_written(self, wal_path):
        WriteAheadLog.create(wal_path).close()
        assert wal_path.read_bytes()[: len(MAGIC)] == MAGIC

    def test_bad_magic_rejected(self, wal_path):
        wal_path.write_bytes(b"NOTAWAL!" + encode_frame(_records(1)[0]))
        with pytest.raises(WALError, match="bad magic"):
            read_wal(wal_path)

    def test_missing_file_rejected(self, wal_path):
        with pytest.raises(WALError, match="cannot read"):
            read_wal(wal_path)

    def test_partial_magic_is_empty_torn_log(self, wal_path):
        """A crash between creation and the header fsync leaves a strict
        prefix of the magic — an empty log, not corruption."""
        wal_path.write_bytes(MAGIC[:3])
        scan = read_wal(wal_path)
        assert scan.records == []
        assert scan.torn


class TestTornTail:
    """A damaged *tail* is the signature of a crash and must be dropped;
    damage anywhere earlier must raise."""

    def _write(self, path, n):
        with WriteAheadLog.create(path) as wal:
            for record in _records(n):
                wal.append(record)
        return read_wal(path)

    def test_truncated_mid_frame_header(self, wal_path):
        clean = self._write(wal_path, 3)
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[: clean.valid_end] + b"\x00\x01")
        scan = read_wal(wal_path)
        assert len(scan.records) == 3
        assert scan.torn
        assert scan.dropped_bytes == 2

    def test_truncated_mid_payload(self, wal_path):
        self._write(wal_path, 3)
        data = wal_path.read_bytes()
        wal_path.write_bytes(data[:-7])  # chop inside the last payload
        scan = read_wal(wal_path)
        assert len(scan.records) == 2
        assert scan.torn

    def test_bitflip_in_final_record_dropped(self, wal_path):
        self._write(wal_path, 3)
        data = bytearray(wal_path.read_bytes())
        data[-4] ^= 0x10  # inside the last record's payload
        wal_path.write_bytes(bytes(data))
        scan = read_wal(wal_path)
        assert len(scan.records) == 2
        assert scan.torn

    def test_bitflip_before_tail_raises(self, wal_path):
        self._write(wal_path, 4)
        frame = encode_frame(_records(1)[0])
        position = len(MAGIC) + len(frame) + 12  # inside record 2 of 4
        data = bytearray(wal_path.read_bytes())
        data[position] ^= 0x10
        wal_path.write_bytes(bytes(data))
        with pytest.raises(WALCorruptionError, match="mid-log"):
            read_wal(wal_path)

    def test_garbage_length_prefix_is_torn(self, wal_path):
        clean = self._write(wal_path, 2)
        data = wal_path.read_bytes()[: clean.valid_end]
        junk = struct.pack(">II", 0x7FFFFFFF, 0) + b"xx"
        wal_path.write_bytes(data + junk)
        scan = read_wal(wal_path)
        assert len(scan.records) == 2
        assert scan.torn

    def test_checksummed_non_json_is_corruption(self, wal_path):
        import zlib

        clean = self._write(wal_path, 1)
        payload = b"not json at all"
        frame = struct.pack(">II", len(payload), zlib.crc32(payload)) + payload
        data = wal_path.read_bytes()[: clean.valid_end]
        # Follow with one more good record so the bad one is not the tail.
        wal_path.write_bytes(data + frame + encode_frame(_records(1)[0]))
        with pytest.raises(WALCorruptionError, match="not valid JSON"):
            read_wal(wal_path)


class TestReopen:
    def test_open_for_append_truncates_torn_tail(self, wal_path):
        with WriteAheadLog.create(wal_path) as wal:
            for record in _records(3):
                wal.append(record)
        with open(wal_path, "ab") as handle:
            handle.write(b"\xde\xad")  # torn garbage from a crash
        reopened, scan = WriteAheadLog.open_for_append(wal_path)
        assert len(scan.records) == 3
        assert scan.torn
        reopened.append(remove_record(4, 0, [0, 0]))
        reopened.close()
        final = read_wal(wal_path)
        assert not final.torn
        assert [record["seq"] for record in final.records] == [1, 2, 3, 4]

    def test_open_for_append_refuses_mid_log_corruption(self, wal_path):
        with WriteAheadLog.create(wal_path) as wal:
            for record in _records(3):
                wal.append(record)
        data = bytearray(wal_path.read_bytes())
        data[len(MAGIC) + 10] ^= 0x01
        wal_path.write_bytes(bytes(data))
        with pytest.raises(WALCorruptionError):
            WriteAheadLog.open_for_append(wal_path)

    def test_truncate_resets_log(self, wal_path):
        wal = WriteAheadLog.create(wal_path)
        for record in _records(4):
            wal.append(record)
        assert wal.appended_since_truncate == 4
        wal.truncate()
        assert wal.appended_since_truncate == 0
        assert wal_path.stat().st_size == len(MAGIC)
        wal.append(insert_record(9, 9, ["x"], [9, 0]))
        wal.close()
        scan = read_wal(wal_path)
        assert [record["seq"] for record in scan.records] == [9]


class TestFsyncBatching:
    def test_every_append_synced_by_default(self, wal_path):
        wal = WriteAheadLog.create(wal_path)
        for record in _records(3):
            wal.append(record)
        assert wal.syncs == 3
        assert wal.synced_size == wal.size
        wal.close()

    def test_batched_syncs(self, wal_path):
        wal = WriteAheadLog.create(wal_path, fsync_every=3)
        records = _records(7)
        for record in records[:5]:
            wal.append(record)
        assert wal.syncs == 1  # one batch of 3; records 4-5 pending
        assert wal.synced_size < wal.size
        for record in records[5:]:
            wal.append(record)
        assert wal.syncs == 2
        wal.close()  # close syncs the remainder
        assert read_wal(wal_path).records == records

    def test_fsync_disabled_until_explicit(self, wal_path):
        wal = WriteAheadLog.create(wal_path, fsync_every=0)
        for record in _records(5):
            wal.append(record)
        assert wal.syncs == 0
        wal.sync()
        assert wal.syncs == 1
        assert wal.synced_size == wal.size
        wal.close()

    def test_closed_wal_rejects_appends(self, wal_path):
        wal = WriteAheadLog.create(wal_path)
        wal.close()
        with pytest.raises(WALError, match="closed"):
            wal.append(_records(1)[0])
        with pytest.raises(WALError, match="closed"):
            wal.sync()
        wal.close()  # idempotent
