"""B+-tree tests: point ops, navigation, bulk load, and a model-based
property test against a plain dict + sorted list."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bptree import BPlusTree


class TestBasics:
    def test_empty(self):
        tree = BPlusTree()
        assert len(tree) == 0
        assert not tree
        assert tree.get(1) is None
        assert tree.first() is None and tree.last() is None
        assert tree.ceiling(0) is None and tree.floor(99) is None
        assert list(tree.items()) == []

    def test_insert_get(self):
        tree = BPlusTree(order=4)
        for key in [5, 1, 9, 3, 7]:
            tree.insert(key, key * 10)
        assert len(tree) == 5
        assert tree.get(3) == 30
        assert tree.get(4, "missing") == "missing"
        assert 7 in tree and 8 not in tree

    def test_overwrite_keeps_size(self):
        tree = BPlusTree()
        tree.insert("a", 1)
        tree.insert("a", 2)
        assert len(tree) == 1
        assert tree.get("a") == 2

    def test_min_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)

    def test_tuple_keys(self):
        tree = BPlusTree(order=4)
        keys = [(0, 1), (0, 0), (1, 0), (0, 2)]
        for key in keys:
            tree.insert(key, None)
        assert list(tree.keys()) == sorted(keys)


class TestNavigation:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 10):
            tree.insert(key, str(key))
        return tree

    def test_ceiling_exact(self, tree):
        assert tree.ceiling(30) == (30, "30")

    def test_ceiling_between(self, tree):
        assert tree.ceiling(31) == (40, "40")

    def test_ceiling_past_end(self, tree):
        assert tree.ceiling(91) is None

    def test_floor_exact(self, tree):
        assert tree.floor(30) == (30, "30")

    def test_floor_between(self, tree):
        assert tree.floor(29) == (20, "20")

    def test_floor_before_start(self, tree):
        assert tree.floor(-1) is None

    def test_first_last(self, tree):
        assert tree.first() == (0, "0")
        assert tree.last() == (90, "90")

    def test_range_items(self, tree):
        assert [k for k, _ in tree.items(low=25, high=55)] == [30, 40, 50]

    def test_range_items_reverse(self, tree):
        assert [k for k, _ in tree.items(low=25, high=55, reverse=True)] == [
            50,
            40,
            30,
        ]

    def test_full_reverse(self, tree):
        assert [k for k, _ in tree.items(reverse=True)] == list(range(90, -1, -10))


class TestDelete:
    def test_delete_present(self):
        tree = BPlusTree(order=4)
        for key in range(50):
            tree.insert(key, key)
        assert tree.delete(25)
        assert len(tree) == 49
        assert tree.get(25) is None
        assert 24 in tree and 26 in tree

    def test_delete_absent(self):
        tree = BPlusTree()
        tree.insert(1, 1)
        assert not tree.delete(2)
        assert len(tree) == 1

    def test_delete_everything(self):
        tree = BPlusTree(order=4)
        keys = list(range(64))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, key)
        random.Random(4).shuffle(keys)
        for key in keys:
            assert tree.delete(key)
        assert len(tree) == 0
        assert list(tree.items()) == []

    def test_navigation_after_deletes(self):
        tree = BPlusTree(order=4)
        for key in range(0, 40, 2):
            tree.insert(key, key)
        for key in range(0, 40, 4):
            tree.delete(key)
        remaining = [k for k, _ in tree.items()]
        assert remaining == [k for k in range(0, 40, 2) if k % 4 != 0]
        assert tree.ceiling(0) == (2, 2)


class TestBulkLoad:
    def test_matches_inserts(self):
        pairs = [(i, i * i) for i in range(500)]
        bulk = BPlusTree.from_sorted(pairs, order=16)
        incremental = BPlusTree(order=16)
        for key, value in pairs:
            incremental.insert(key, value)
        assert list(bulk.items()) == list(incremental.items())
        assert len(bulk) == 500

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BPlusTree.from_sorted([(2, None), (1, None)])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            BPlusTree.from_sorted([(1, None), (1, None)])

    def test_empty(self):
        tree = BPlusTree.from_sorted([])
        assert len(tree) == 0

    def test_single(self):
        tree = BPlusTree.from_sorted([(5, "five")])
        assert tree.get(5) == "five"

    def test_height_grows_logarithmically(self):
        small = BPlusTree.from_sorted([(i, None) for i in range(10)], order=8)
        large = BPlusTree.from_sorted([(i, None) for i in range(5000)], order=8)
        assert small.height() <= large.height() <= 6

    @pytest.mark.parametrize("n", [1, 2, 3, 5, 17, 100, 1000])
    def test_various_sizes_navigable(self, n):
        tree = BPlusTree.from_sorted([(i, i) for i in range(n)], order=8)
        assert tree.ceiling(n - 1) == (n - 1, n - 1)
        assert tree.floor(0) == (0, 0)
        assert len(list(tree.items())) == n


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "delete", "get"]),
            st.integers(min_value=0, max_value=60),
        ),
        max_size=200,
    )
)
def test_model_based(operations):
    """The tree behaves exactly like a dict, for any operation sequence."""
    tree = BPlusTree(order=4)
    model = {}
    for op, key in operations:
        if op == "insert":
            tree.insert(key, key * 2)
            model[key] = key * 2
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    for probe in range(62):
        expected_ceiling = min((k for k in model if k >= probe), default=None)
        got = tree.ceiling(probe)
        assert (got[0] if got else None) == expected_ceiling
        expected_floor = max((k for k in model if k <= probe), default=None)
        got = tree.floor(probe)
        assert (got[0] if got else None) == expected_floor
