"""Tests for the probing algorithms (Section IV): ProbeNode internals, the
bidirectional walkthrough of Section IV-A, Theorem 2, and oracle
equivalence."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dewey import LEFT, MAX_COMPONENT, MIDDLE, RIGHT
from repro.core.ordering import DiversityOrdering
from repro.core.probe_node import ProbeNode
from repro.core.probing import probe_scored, probe_unscored
from repro.core.similarity import is_diverse, is_scored_diverse
from repro.index.inverted import InvertedIndex
from repro.index.merged import MergedList
from repro.query.evaluate import res, scored_res
from repro.query.parser import parse_query

from .conftest import RANDOM_ORDERING, random_query, random_relation


class TestProbeNodeInit:
    def test_left_created_root_edges(self):
        """Per Section IV-A: a LEFT-created root excludes the discovered
        branch on the left and keeps the region maximum on the right."""
        root = ProbeNode((0, 0, 0, 0, 0), 0, LEFT)
        assert root.edge_left == (1, 0, 0, 0, 0)
        assert root.edge_right == (MAX_COMPONENT,) * 5
        assert root.next_dir == RIGHT

    def test_spine_children_created(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        child = root.children[0]
        assert child.edge_left == (0, 1, 0)
        assert child.edge_right == (0, MAX_COMPONENT, MAX_COMPONENT)
        grandchild = child.children[0]
        assert grandchild.level == 2

    def test_right_created_edges(self):
        node = ProbeNode((1, 3, 0), 0, RIGHT)
        assert node.edge_right == (0, MAX_COMPONENT, MAX_COMPONENT)
        assert node.edge_left == (0, 0, 0)
        assert node.next_dir == LEFT

    def test_right_created_at_zero_closes_left_side(self):
        node = ProbeNode((0, 5, 0), 0, RIGHT)
        # Nothing can be left of branch 0: frontier is already closed.
        assert not node.frontier_open()

    def test_middle_created_keeps_full_region(self):
        node = ProbeNode((2, 1, 0), 0, MIDDLE)
        assert node.edge_left == (0, 0, 0)
        assert node.edge_right == (MAX_COMPONENT,) * 3
        assert node.frontier_open()

    def test_counts(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        assert root.num_items() == 1
        root.add((2, 0, 0), RIGHT)
        assert root.num_items() == 2
        assert root.items() == [(0, 0, 0), (2, 0, 0)]


class TestProbeNodeAddAndProbe:
    def test_first_probe_is_rightmost(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        probe_id, direction, owner = root.get_probe_id()
        assert probe_id == (MAX_COMPONENT,) * 3
        assert direction == RIGHT
        assert owner is root

    def test_probe_alternates_direction(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        root.add((5, 0, 0), RIGHT)
        probe_id, direction, _ = root.get_probe_id()
        assert direction == LEFT
        assert probe_id == (1, 0, 0)

    def test_add_updates_edges_only_in_phase_one(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        root.close_frontier()
        root.add((5, 0, 0), RIGHT)
        assert not root.frontier_open()

    def test_add_duplicate_returns_false(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        assert root.add((0, 0, 0), LEFT) is False
        assert root.num_items() == 1

    def test_min_child_phase(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        root.add((0, 1, 0), LEFT)      # second item under branch 0
        root.add((4, 2, 0), RIGHT)     # one item under branch 4 (gap below)
        root.close_frontier()
        # Branch 4 (1 item) has fewer than branch 0 (2): probes go there.
        request = root.get_probe_id()
        assert request is not None
        probe_id, _, owner = request
        assert probe_id[0] == 4
        assert owner.prefix == (4,)

    def test_right_discovered_zero_branch_is_exhausted(self):
        """A RIGHT-discovered branch at component 0 has no unexplored gap:
        the probe that found it proved nothing lies beyond (Section IV-A's
        bidirectional-exploration advantage)."""
        root = ProbeNode((0, 0, 0), 0, LEFT)
        root.add((0, 1, 0), LEFT)
        root.add((4, 0, 0), RIGHT)
        root.close_frontier()
        request = root.get_probe_id()
        assert request is not None
        probe_id, _, _ = request
        # Branch 4 is exhausted despite having fewest items; probing falls
        # back to branch 0's remaining gap.
        assert probe_id[0] == 0

    def test_tentative_not_counted_until_confirmed(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        root.add((0, 1, 0), LEFT, tentative=True)
        assert root.num_items() == 1
        assert root.tentative_items() == [(0, 1, 0)]
        assert root.confirm((0, 1, 0))
        assert root.num_items() == 2
        assert not root.confirm((0, 1, 0))  # already confirmed

    def test_confirm_unknown_is_false(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        assert not root.confirm((9, 9, 9))

    def test_contains(self):
        root = ProbeNode((0, 0, 0), 0, LEFT)
        root.add((2, 1, 0), RIGHT)
        assert root.contains((2, 1, 0))
        assert not root.contains((2, 0, 0))

    def test_exhaustion_marks_done(self):
        root = ProbeNode((0, 0), 0, LEFT)
        root.close_frontier()
        for child in root.children.values():
            child.close_frontier()
        # Repeated probing drains every frontier, then returns None forever.
        while True:
            request = root.get_probe_id()
            if request is None:
                break
            _, _, owner = request
            owner.close_frontier()
        assert root.get_probe_id() is None


class TestUnscoredProbingOnFigure1:
    def test_section_iv_narrative(self, cars, cars_index):
        """Query 'Low', k=3: first Honda Civic, then a Toyota from the right,
        then another distinct Toyota — one Honda and two Toyotas, diverse."""
        query = parse_query("Description CONTAINS 'Low'")
        merged = MergedList(query, cars_index)
        got = probe_unscored(merged, 3)
        full = [cars_index.dewey.dewey_of(r) for r in res(cars, query)]
        assert is_diverse(got, full, 3)
        assert len(got) == 3
        assert {d[0] for d in got} == {0, 1}

    def test_theorem2_bound(self, cars, cars_index):
        """At most 2k calls to next (Theorem 2)."""
        for text in ["", "Make = 'Honda'", "Year = 2007",
                     "Description CONTAINS 'miles'"]:
            for k in (1, 2, 3, 5, 8, 15):
                merged = MergedList(parse_query(text), cars_index)
                probe_unscored(merged, k)
                assert merged.next_calls <= 2 * k

    def test_no_matches(self, cars_index):
        merged = MergedList(parse_query("Make = 'Tesla'"), cars_index)
        assert probe_unscored(merged, 3) == []

    def test_k_zero(self, cars_index):
        merged = MergedList(parse_query(""), cars_index)
        assert probe_unscored(merged, 0) == []

    def test_fewer_matches_than_k(self, cars, cars_index):
        query = parse_query("Make = 'Toyota'")
        merged = MergedList(query, cars_index)
        got = probe_unscored(merged, 10)
        assert len(got) == 4


class TestScoredProbingOnFigure1:
    def test_forced_items_present(self, cars, cars_index):
        query = parse_query("Make = 'Toyota' [5] OR Description CONTAINS 'miles'")
        merged = MergedList(query, cars_index)
        got = probe_scored(merged, 6)
        sres = {
            cars_index.dewey.dewey_of(rid): score
            for rid, score in scored_res(cars, query)
        }
        assert is_scored_diverse(list(got), sres, 6)
        # All four Toyotas (score 6) are forced in.
        toyota_count = sum(1 for d in got if d[0] == 1)
        assert toyota_count == 4

    def test_uniform_scores_behave_like_unscored(self, cars, cars_index):
        query = parse_query("Year = 2007")
        merged = MergedList(query, cars_index)
        got = probe_scored(merged, 5)
        full = [cars_index.dewey.dewey_of(r) for r in res(cars, query)]
        assert is_diverse(list(got), full, 5)

    def test_k_zero_and_empty(self, cars_index):
        merged = MergedList(parse_query("Make = 'Tesla'"), cars_index)
        assert probe_scored(merged, 3) == {}
        merged = MergedList(parse_query(""), cars_index)
        assert probe_scored(merged, 0) == {}


@settings(max_examples=120, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=1, max_value=10),
)
def test_unscored_probe_oracle_equivalence(seed, k):
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=45)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    query = random_query(rng)
    merged = MergedList(query, index)
    got = probe_unscored(merged, k)
    full = [index.dewey.dewey_of(rid) for rid in res(relation, query)]
    assert is_diverse(got, full, k)
    assert merged.next_calls <= 2 * k + 1


@settings(max_examples=120, deadline=None)
@given(
    st.integers(min_value=0, max_value=1_000_000),
    st.integers(min_value=1, max_value=10),
)
def test_scored_probe_oracle_equivalence(seed, k):
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=45)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    query = random_query(rng, weighted=True)
    merged = MergedList(query, index)
    got = probe_scored(merged, k)
    sres = {
        index.dewey.dewey_of(rid): score
        for rid, score in scored_res(relation, query)
    }
    assert is_scored_diverse(list(got), sres, k)
    for dewey, score in got.items():
        assert score == pytest.approx(sres[dewey])
