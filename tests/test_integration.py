"""Cross-module integration tests on generated Autos data.

These exercise the whole stack — generator -> relation -> index -> query
compiler -> every algorithm -> formal checkers — at a scale where skipping
and probing actually kick in.
"""

import pytest

from repro import DiversityEngine, Query, is_diverse, is_scored_diverse
from repro.core.relaxation import relaxed_search
from repro.core.weighted import WeightedDiversifier
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex
from repro.query.evaluate import res, scored_res
from repro.storage.csvio import from_csv_string, to_csv_string


@pytest.fixture(scope="module")
def inventory():
    return generate_autos(AutosSpec(rows=3000, seed=2026))


@pytest.fixture(scope="module")
def engine(inventory):
    return DiversityEngine.from_relation(inventory, autos_ordering())


class TestWorkloadCorrectness:
    """Every diversity algorithm satisfies the formal definition on every
    workload query — the end-to-end version of the per-module oracles."""

    @pytest.fixture(scope="class")
    def unscored_workload(self, inventory):
        return WorkloadGenerator(
            inventory,
            WorkloadSpec(queries=12, predicates=2, selectivity=0.4, seed=5),
        ).materialise()

    @pytest.fixture(scope="class")
    def scored_workload(self, inventory):
        return WorkloadGenerator(
            inventory,
            WorkloadSpec(
                queries=8, predicates=3, selectivity=0.3,
                disjunctive=True, weighted=True, seed=6,
            ),
        ).materialise()

    @pytest.mark.parametrize("algorithm", ["onepass", "probe", "naive"])
    @pytest.mark.parametrize("k", [1, 10, 40])
    def test_unscored(self, inventory, engine, unscored_workload, algorithm, k):
        for query in unscored_workload:
            result = engine.search(query, k=k, algorithm=algorithm)
            full = [engine.index.dewey.dewey_of(r) for r in res(inventory, query)]
            assert is_diverse(result.deweys, full, k), query.describe()

    @pytest.mark.parametrize("algorithm", ["onepass", "probe", "naive"])
    @pytest.mark.parametrize("k", [1, 10, 40])
    def test_scored(self, inventory, engine, scored_workload, algorithm, k):
        for query in scored_workload:
            result = engine.search(query, k=k, algorithm=algorithm, scored=True)
            sres = {
                engine.index.dewey.dewey_of(r): s
                for r, s in scored_res(inventory, query)
            }
            assert is_scored_diverse(result.deweys, sres, k), query.describe()

    def test_probe_bound_holds_across_workload(self, engine, unscored_workload):
        for query in unscored_workload:
            for k in (1, 10, 40):
                result = engine.search(query, k=k, algorithm="probe")
                assert result.stats["next_calls"] <= 2 * k + 1


class TestBackendsAgree:
    def test_array_and_bptree_same_results(self, inventory):
        ordering = autos_ordering()
        array_engine = DiversityEngine(
            InvertedIndex.build(inventory, ordering, backend="array")
        )
        btree_engine = DiversityEngine(
            InvertedIndex.build(inventory, ordering, backend="bptree")
        )
        for text in [
            "Make = 'Honda'",
            "Description CONTAINS 'low miles'",
            "Make = 'Toyota' [2] OR Description CONTAINS 'rare' [3]",
        ]:
            a = array_engine.search(text, k=8, algorithm="probe")
            b = btree_engine.search(text, k=8, algorithm="probe")
            assert a.deweys == b.deweys


class TestIncrementalIndexing:
    def test_streaming_inserts_serve_queries(self, inventory):
        """An incrementally built index answers like a bulk-built one
        (diversity checked against its own Dewey assignment)."""
        ordering = autos_ordering()
        index = InvertedIndex(inventory, ordering)
        for rid in range(500):
            index.insert(rid)
        engine = DiversityEngine(index)
        result = engine.search("Make = 'Honda'", k=5, algorithm="probe")
        query = Query.scalar("Make", "Honda")
        matching = [
            index.dewey.dewey_of(rid)
            for rid in range(500)
            if inventory.value(rid, "Make") == "Honda"
        ]
        assert is_diverse(result.deweys, matching, 5)

    def test_inserts_after_queries(self, inventory):
        ordering = autos_ordering()
        index = InvertedIndex(inventory, ordering)
        for rid in range(100):
            index.insert(rid)
        engine = DiversityEngine(index)
        before = len(engine.search("", k=1000))
        for rid in range(100, 200):
            index.insert(rid)
        after = len(engine.search("", k=1000))
        assert after == before + 100


class TestCsvRoundtripThroughEngine:
    def test_roundtripped_relation_same_answers(self, inventory, engine):
        clone = from_csv_string(to_csv_string(inventory), name="Cars")
        clone_engine = DiversityEngine.from_relation(clone, autos_ordering())
        for text in ["Make = 'Honda'", "Description CONTAINS 'rare find'"]:
            original = engine.search(text, k=6)
            cloned = clone_engine.search(text, k=6)
            assert [i.values for i in original] == [i.values for i in cloned]


class TestExtensionsAtScale:
    def test_relaxation_on_inventory(self, engine):
        outcome = relaxed_search(
            engine,
            "Make = 'Tesla' AND Color = 'Orange' AND Year = 1999",
            k=5,
        )
        assert outcome.relaxed
        assert len(outcome.result) == 5
        scores = [item.score for item in outcome.result]
        assert scores == sorted(scores, reverse=True)

    def test_weighted_diversity_on_inventory(self, engine):
        merged = engine.compile("Description CONTAINS 'low'")
        from repro.core.baselines import collect_all

        matches = collect_all(merged)
        diversifier = WeightedDiversifier(
            engine.index.dewey, {("Make", "Honda"): 9.0}
        )
        chosen = diversifier.select(matches, 10)
        assert diversifier.is_weighted_diverse(chosen, matches)
        hondas = sum(
            1 for d in chosen if engine.index.dewey.values_of(d)[0] == "Honda"
        )
        # Weight 9 makes Honda's 4th item cheaper (7/9) than any other
        # make's 1st (1.0), so Honda takes >= 4 of the 10 slots; uniform
        # diversity over 10 matching makes would give it exactly 1.
        assert hondas >= 4

    def test_rare_model_surfaces(self, inventory, engine):
        """The S2000 scenario: a diverse page over all Hondas includes the
        rare model even though a proportional sample would miss it."""
        honda_models = {
            row[1] for row in inventory if row[0] == "Honda"
        }
        result = engine.search("Make = 'Honda'", k=len(honda_models))
        shown = {item["Model"] for item in result}
        assert shown == honda_models
