"""Tests for the retrieve-c*k / MMR baseline (the introduction's argument)."""

import pytest

from repro.core.baselines import collect_all
from repro.core.mmr import (
    dewey_similarity,
    evaluate_ck,
    mmr_select,
    retrieve_ck_diverse,
)
from repro.core.similarity import balance_violations, is_diverse
from repro.index.inverted import InvertedIndex
from repro.index.merged import MergedList
from repro.query.parser import parse_query
from repro.storage.relation import Relation
from repro.storage.schema import Schema
from repro.core.ordering import DiversityOrdering


class TestDeweySimilarity:
    def test_identical(self):
        assert dewey_similarity((0, 1, 2), (0, 1, 2)) == 1.0

    def test_disjoint(self):
        assert dewey_similarity((0, 1), (1, 1)) == 0.0

    def test_partial(self):
        assert dewey_similarity((0, 1, 2, 3), (0, 1, 9, 9)) == 0.5

    def test_depth_mismatch(self):
        with pytest.raises(ValueError):
            dewey_similarity((0,), (0, 1))


class TestMmrSelect:
    def test_pure_diversity_spreads_branches(self):
        candidates = [(0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, 0)]
        chosen = mmr_select(candidates, 2, trade_off=0.0)
        assert {d[0] for d in chosen} == {0, 1}

    def test_relevance_dominates_at_trade_off_one(self):
        candidates = [(0, 0), (0, 1), (1, 0)]
        relevance = {(0, 0): 3.0, (0, 1): 2.0, (1, 0): 1.0}
        chosen = mmr_select(candidates, 2, relevance=relevance, trade_off=1.0)
        assert chosen == [(0, 0), (0, 1)]

    def test_k_bounds(self):
        assert mmr_select([(0, 0)], 0) == []
        assert mmr_select([], 3) == []
        assert mmr_select([(0, 0)], 5) == [(0, 0)]

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            mmr_select([(0, 0)], -1)
        with pytest.raises(ValueError):
            mmr_select([(0, 0)], 1, trade_off=1.5)

    def test_deterministic(self):
        candidates = [(0, 0, 0), (1, 0, 0), (2, 0, 0), (0, 1, 0)]
        assert mmr_select(candidates, 3) == mmr_select(list(reversed(candidates)), 3)


def duplicate_heavy_index():
    """100 Civics followed (in document order) by one car each of three
    other models — the paper's 'hundreds of cars of a given model'
    situation.  The singletons sort after 'Civic' so the scan window fills
    with duplicates first."""
    schema = Schema.of(model="categorical", color="categorical")
    rows = [("Civic", f"color{i % 7}") for i in range(100)]
    rows += [("Wagon", "blue"), ("Xterra", "green"), ("Yaris", "red")]
    relation = Relation.from_rows(schema, rows)
    return InvertedIndex.build(relation, DiversityOrdering(["model", "color"]))


class TestRetrieveCk:
    def test_small_window_misses_branches(self):
        """With c*k < 100 the window holds only Civics: the baseline cannot
        be diverse no matter how it reranks (the intro's core argument)."""
        index = duplicate_heavy_index()
        merged = MergedList(parse_query(""), index)
        full = collect_all(merged)
        selected = retrieve_ck_diverse(MergedList(parse_query(""), index), 4, c=2)
        assert balance_violations(selected, full) > 0
        models = {index.dewey.values_of(d)[0] for d in selected}
        assert models == {"Civic"}

    def test_large_window_recovers(self):
        index = duplicate_heavy_index()
        merged = MergedList(parse_query(""), index)
        full = collect_all(merged)
        selected = retrieve_ck_diverse(MergedList(parse_query(""), index), 4, c=30)
        models = {index.dewey.values_of(d)[0] for d in selected}
        assert len(models) == 4
        assert balance_violations(selected, full) == 0

    def test_c_must_be_positive(self):
        index = duplicate_heavy_index()
        with pytest.raises(ValueError):
            retrieve_ck_diverse(MergedList(parse_query(""), index), 4, c=0)

    def test_evaluate_ck_monotone_improvement(self):
        index = duplicate_heavy_index()
        merged = MergedList(parse_query(""), index)
        full = collect_all(merged)
        report = evaluate_ck(
            MergedList(parse_query(""), index), full, 4, [1, 2, 30]
        )
        assert report[30] == 0
        assert report[1] >= report[30]
        assert report[2] > 0  # window of 8 Civics still misses everything

    def test_exact_algorithms_never_violate(self):
        from repro.core.probing import probe_unscored

        index = duplicate_heavy_index()
        merged = MergedList(parse_query(""), index)
        full = collect_all(merged)
        exact = probe_unscored(MergedList(parse_query(""), index), 4)
        assert balance_violations(exact, full) == 0
        assert is_diverse(exact, full, 4)
