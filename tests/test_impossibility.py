"""Tests for the Inverted-List IR system and the Theorem 1 demonstration."""

import random

import pytest

from repro.data.paper_example import figure1_relation
from repro.ir.impossibility import (
    THEOREM_QUERIES,
    adversarial_assignments,
    demonstrate,
    find_violation,
    random_assignment,
)
from repro.ir.irsystem import (
    InvertedListIRSystem,
    max_aggregator,
    min_aggregator,
    scalar_key,
    sum_aggregator,
    token_key,
)


class TestIRSystem:
    @pytest.fixture
    def system(self):
        relation = figure1_relation()
        scores = {}
        # Score item rid in every list it belongs to with 100 - rid, so
        # smaller rids rank first everywhere.
        probe = InvertedListIRSystem(relation, {})
        for key in probe.list_keys():
            for rid in probe.postings(key):
                scores[(key, rid)] = 100.0 - rid
        return InvertedListIRSystem(relation, scores)

    def test_lists_built(self, system):
        assert set(system.postings(scalar_key("Make", "Toyota"))) == {11, 12, 13, 14}
        assert len(system.postings(token_key("Description", "miles"))) == 11

    def test_postings_ordered_by_score(self, system):
        rids = system.postings(scalar_key("Make", "Honda"))
        assert rids == sorted(rids)  # higher score = smaller rid here

    def test_top_k_single_list(self, system):
        top = system.top_k([(scalar_key("Year", 2007), 1.0)], 3)
        assert top == [0, 1, 2]

    def test_top_k_two_lists_sum(self, system):
        top = system.top_k(
            [(scalar_key("Year", 2007), 1.0),
             (token_key("Description", "miles"), 1.0)],
            2,
        )
        # Items in both lists get doubled weight: 2007+miles rows win.
        assert top == [0, 1]

    def test_weights_scale_lists(self, system):
        top = system.top_k(
            [(scalar_key("Make", "Toyota"), 100.0),
             (scalar_key("Make", "Honda"), 1.0)],
            4,
        )
        assert set(top) == {11, 12, 13, 14}

    def test_allowed_filter(self, system):
        top = system.top_k(
            [(scalar_key("Year", 2007), 1.0)], 3, allowed={5, 7, 9}
        )
        assert top == [5, 7, 9]

    def test_aggregators(self):
        assert sum_aggregator([1.0, 2.0]) == 3.0
        assert max_aggregator([1.0, 2.0]) == 2.0
        assert min_aggregator([1.0, 2.0]) == 1.0
        assert max_aggregator([]) == 0.0


class TestTheorem1:
    def test_three_queries_defined(self):
        assert len(THEOREM_QUERIES) == 3
        assert THEOREM_QUERIES[2][1] == 6  # the conjunctive query uses k=6

    def test_every_adversarial_assignment_violates(self):
        for scores in adversarial_assignments():
            violation = find_violation(scores)
            assert violation is not None

    def test_adversarial_assignments_fail_on_the_conjunction(self):
        """Assignments tuned to satisfy Q1 and Q2 must break on Q3 — the
        counting argument at the heart of the proof."""
        conjunctive = THEOREM_QUERIES[2][0]
        hits = 0
        for scores in adversarial_assignments():
            violation = find_violation(scores)
            if violation.query_text == conjunctive:
                hits += 1
        assert hits > 0

    def test_random_assignments_always_violate(self):
        rng = random.Random(99)
        for _ in range(25):
            assert find_violation(random_assignment(rng)) is not None

    def test_demonstrate_reports_no_survivors(self):
        report = demonstrate(random_trials=20, seed=5)
        assert report["survivors"] == 0
        assert report["assignments_checked"] == 20 + 16
        assert sum(report["violations_per_query"].values()) == 36

    def test_weights_must_align(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            find_violation(
                random_assignment(rng), weights=[[], [1.0], [1.0, 1.0]]
            )
