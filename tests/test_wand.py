"""WAND top-k tests: exactness against exhaustive scoring."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ordering import DiversityOrdering
from repro.index.inverted import InvertedIndex
from repro.index.merged import MergedList
from repro.index.wand import wand_topk
from repro.query.evaluate import scored_res
from repro.query.parser import parse_query

from .conftest import RANDOM_ORDERING, random_query, random_relation


def exhaustive_topk(relation, index, query, k):
    scored = sorted(
        (
            (index.dewey.dewey_of(rid), score)
            for rid, score in scored_res(relation, query)
        ),
        key=lambda pair: (-pair[1], pair[0]),
    )
    return scored[:k]


class TestWandOnFigure1:
    def test_disjunctive_topk(self, cars, cars_index):
        query = parse_query(
            "Make = 'Toyota' [2] OR Description CONTAINS 'miles' [1]"
        )
        merged = MergedList(query, cars_index)
        top = wand_topk(merged, 4)
        # The four Toyotas all score 3 (Toyota + 'Low miles').
        assert [score for _, score in top] == [3.0, 3.0, 3.0, 3.0]
        assert {cars_index.dewey.rid_of(d) for d, _ in top} == {11, 12, 13, 14}

    def test_ties_prefer_smaller_ids(self, cars, cars_index):
        query = parse_query("Description CONTAINS 'miles'")
        merged = MergedList(query, cars_index)
        top = wand_topk(merged, 3)
        expected = exhaustive_topk(cars, cars_index, query, 3)
        assert top == expected

    def test_fewer_matches_than_k(self, cars, cars_index):
        query = parse_query("Description CONTAINS 'rare'")
        merged = MergedList(query, cars_index)
        top = wand_topk(merged, 10)
        assert len(top) == 1

    def test_conjunctive_query_filters(self, cars, cars_index):
        query = parse_query("Make = 'Honda' AND Description CONTAINS 'miles'")
        merged = MergedList(query, cars_index)
        top = wand_topk(merged, 100)
        rids = {cars_index.dewey.rid_of(d) for d, _ in top}
        assert rids == {0, 1, 2, 3, 6, 8, 10}

    def test_k_zero(self, cars_index):
        merged = MergedList(parse_query("Make = 'Honda'"), cars_index)
        assert wand_topk(merged, 0) == []

    def test_no_matches(self, cars_index):
        merged = MergedList(parse_query("Make = 'Tesla'"), cars_index)
        assert wand_topk(merged, 5) == []

    def test_descending_scores(self, cars, cars_index):
        query = parse_query(
            "Make = 'Toyota' [2] OR Year = 2007 [1] OR Description CONTAINS 'low' [1]"
        )
        merged = MergedList(query, cars_index)
        top = wand_topk(merged, 10)
        scores = [score for _, score in top]
        assert scores == sorted(scores, reverse=True)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=0, max_value=100_000), st.integers(min_value=1, max_value=12))
def test_wand_exact_on_random_data(seed, k):
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=40)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    query = random_query(rng, weighted=True)
    merged = MergedList(query, index)
    got = wand_topk(merged, k)
    expected = exhaustive_topk(relation, index, query, k)
    # Sets of scores must match exactly; the identity of tied boundary items
    # must match too because both sides break ties toward smaller IDs.
    assert got == expected
