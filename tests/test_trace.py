"""Tests for execution tracing."""

from repro.core.dewey import LEFT, RIGHT
from repro.core.onepass import one_pass_scored, one_pass_unscored
from repro.core.probing import probe_unscored
from repro.core.trace import ProbeEvent, TracingMergedList
from repro.index.merged import MergedList
from repro.query.parser import parse_query


def traced(index, text):
    return TracingMergedList(MergedList(parse_query(text), index))


class TestTracingMergedList:
    def test_records_next(self, cars_index):
        trace = traced(cars_index, "Make = 'Honda'")
        first = trace.first()
        assert first is not None
        assert trace.probe_count() == 1
        event = trace.events[0]
        assert event.kind == "next"
        assert event.result == first

    def test_transparent_results(self, cars_index):
        plain = MergedList(parse_query("Year = 2007"), cars_index)
        trace = traced(cars_index, "Year = 2007")
        assert trace.first() == plain.first()
        assert trace.depth == plain.depth
        assert trace.max_score() == plain.max_score()

    def test_records_scored(self, cars_index):
        trace = traced(cars_index, "Make = 'Toyota' [2] OR Year = 2007")
        from repro.core.dewey import zeros

        trace.next_scored(zeros(trace.depth), LEFT, 2.0)
        assert trace.events[-1].kind == "next_scored"
        assert trace.events[-1].theta == 2.0

    def test_render(self, cars_index):
        trace = traced(cars_index, "Make = 'Honda'")
        trace.first()
        text = trace.render()
        assert "next(" in text and "LEFT" in text

    def test_event_describe_null(self):
        event = ProbeEvent("next", (0, 0), LEFT, None)
        assert event.describe().endswith("NULL")


class TestAlgorithmTraces:
    def test_onepass_bounds_increase(self, cars_index):
        """The defining one-pass property, read off the trace."""
        trace = traced(cars_index, "Make = 'Honda'")
        one_pass_unscored(trace, 4)
        bounds = [e.bound for e in trace.events]
        assert bounds == sorted(bounds)

    def test_probe_trace_is_bidirectional(self, cars_index):
        trace = traced(cars_index, "Description CONTAINS 'Low'")
        probe_unscored(trace, 3)
        directions = {e.direction for e in trace.events}
        assert directions == {LEFT, RIGHT}
        assert trace.probe_count() <= 2 * 3

    def test_scored_onepass_uses_scored_steps(self, cars_index):
        trace = traced(cars_index, "Make = 'Toyota' [2] OR Year = 2007")
        one_pass_scored(trace, 3)
        kinds = {e.kind for e in trace.events}
        assert "next_onepass" in kinds

    def test_skip_levels(self, cars_index):
        trace = traced(cars_index, "Make = 'Honda'")
        one_pass_unscored(trace, 3)
        levels = trace.skip_levels()
        assert all(0 <= level <= trace.depth for level in levels)
