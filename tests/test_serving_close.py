"""Satellite: engine ``close()`` is idempotent and concurrency-safe.

The server's drain path closes engines from a signal-handler context
while worker threads may still be inside ``search_many`` — so ``close``
must tolerate double calls, concurrent calls from many threads, and a
close racing a live batch (whose futures may then complete or be
cancelled, but must never wedge or corrupt the engine).
"""

from __future__ import annotations

import threading
from concurrent.futures import CancelledError

import pytest

from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.serving import ServingEngine
from repro.sharding import ShardedEngine

QUERIES = ["Make = 'Honda'", "Color = 'Red'", "Year = 2007"] * 40


def _make_serving() -> ServingEngine:
    return ServingEngine.from_relation(figure1_relation(), figure1_ordering())


class TestServingEngineClose:
    def test_double_close_is_idempotent(self):
        serving = _make_serving()
        serving.search("Make = 'Honda'", k=2)
        serving.close()
        serving.close()  # second call is a no-op, not an error

    def test_context_manager_plus_explicit_close(self):
        with _make_serving() as serving:
            serving.search("Make = 'Honda'", k=2)
            serving.close()
        # __exit__ closed an already-closed engine: still fine.

    def test_concurrent_close_from_many_threads(self):
        serving = _make_serving()
        serving.search_many(QUERIES[:10], k=2)
        barrier = threading.Barrier(8)
        errors = []

        def race():
            barrier.wait()
            try:
                serving.close()
            except BaseException as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        # "close returned" means "fully closed": the pool is gone.
        assert serving._pool is None

    def test_close_during_search_many(self):
        serving = _make_serving()
        finished = threading.Event()
        outcome = {}

        def batch():
            try:
                outcome["report"] = serving.search_many(
                    QUERIES, k=3, threads=2)
            except CancelledError:
                outcome["cancelled"] = True
            except RuntimeError as exc:
                # "cannot schedule new futures after shutdown" — the close
                # won the race before the batch submitted everything.
                outcome["shutdown"] = str(exc)
            finally:
                finished.set()

        worker = threading.Thread(target=batch)
        worker.start()
        serving.close()  # races the in-flight batch
        assert finished.wait(timeout=30.0)
        worker.join(timeout=30.0)
        # Whichever way the race went, it resolved: a finished report,
        # cancelled futures, or a refused submission — never a hang.
        assert outcome
        if "report" in outcome:
            assert len(outcome["report"].results) == len(QUERIES)
        serving.close()  # and close stays idempotent afterwards


class TestShardedEngineClose:
    def _make(self) -> ShardedEngine:
        return ShardedEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2, workers=2)

    def test_double_close_is_idempotent(self):
        engine = self._make()
        engine.search("Make = 'Honda'", k=2, algorithm="naive")
        engine.close()
        engine.close()

    def test_concurrent_close(self):
        engine = self._make()
        engine.search("Make = 'Honda'", k=2, algorithm="naive")
        errors = []
        barrier = threading.Barrier(6)

        def race():
            barrier.wait()
            try:
                engine.close()
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=race) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert engine._pool is None

    def test_close_inside_serving_close_is_single_teardown(self):
        serving = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2)
        assert isinstance(serving.engine, ShardedEngine)
        serving.close()   # closes the sharded engine underneath
        serving.engine.close()  # direct second close: still a no-op
