"""Tests for the live DiverseView and the scoring models."""

import math
import random

import pytest

from repro import DiversityEngine, Query, is_diverse, is_scored_diverse
from repro.core.incremental import DiverseView
from repro.data.paper_example import FIGURE1_ROWS, figure1_ordering
from repro.data.autos import autos_schema
from repro.index.inverted import InvertedIndex
from repro.query.evaluate import res, scored_res
from repro.query.parser import parse_query
from repro.query.scoring import coarsen_weights, idf, idf_weights, scale_weights
from repro.storage.relation import Relation


def empty_engine():
    relation = Relation(autos_schema(), name="Cars")
    return DiversityEngine.from_relation(relation, figure1_ordering())


class TestDiverseView:
    def test_streaming_matches_definition(self):
        """Feed Figure 1 row by row; at every step the view is a diverse
        top-k of everything matching so far."""
        engine = empty_engine()
        view = DiverseView(engine, "Make = 'Honda'", k=3)
        matching: list = []
        for row in FIGURE1_ROWS:
            rid = view.offer_row(row)
            if rid is not None:
                matching.append(engine.index.dewey.dewey_of(rid))
            assert is_diverse(view.deweys(), matching, 3)
        assert len(view) == 3
        models = {item["Model"] for item in view.items()}
        assert len(models) == 3

    def test_non_matching_rows_ignored(self):
        engine = empty_engine()
        view = DiverseView(engine, "Make = 'Honda'", k=2)
        assert view.offer_row(("Toyota", "Prius", "Tan", 2007, "Low miles")) is None
        assert len(view) == 0
        assert view.offered == 0

    def test_scored_view(self):
        engine = empty_engine()
        text = "Make = 'Toyota' [2] OR Description CONTAINS 'miles' [1]"
        view = DiverseView(engine, text, k=3, scored=True)
        seen: dict = {}
        query = parse_query(text)
        for row in FIGURE1_ROWS:
            rid = view.offer_row(row)
            if rid is not None:
                dewey = engine.index.dewey.dewey_of(rid)
                seen[dewey] = query.score(engine.relation.row_dict(rid))
            assert is_scored_diverse(view.deweys(), seen, 3)
        assert sorted(view.scores().values()) == [3.0, 3.0, 3.0]

    def test_refresh_seeds_from_existing_data(self, cars):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        view = DiverseView(engine, "Year = 2007", k=5)
        full = [
            engine.index.dewey.dewey_of(r)
            for r in res(cars, parse_query("Year = 2007"))
        ]
        assert is_diverse(view.deweys(), full, 5)
        assert view.offered == len(full)

    def test_offer_rid_after_manual_insert(self, cars):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        view = DiverseView(engine, "Make = 'Tesla'", k=2)
        rid = engine.relation.insert(("Tesla", "ModelS", "Red", 2008, "fast"))
        engine.index.insert(rid)
        assert view.offer_rid(rid)
        assert len(view) == 1

    def test_invalid_k(self, cars):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        with pytest.raises(ValueError):
            DiverseView(engine, "", k=0)

    def test_randomized_stream_always_diverse(self):
        rng = random.Random(8)
        engine = empty_engine()
        view = DiverseView(engine, "", k=6)
        matching = []
        makes = ["Honda", "Toyota", "Ford"]
        models = ["A", "B"]
        for i in range(120):
            row = (
                rng.choice(makes), rng.choice(models), "Black",
                2000 + rng.randint(0, 5), "low miles",
            )
            rid = view.offer_row(row)
            assert rid is not None
            matching.append(engine.index.dewey.dewey_of(rid))
            if i % 10 == 0:
                assert is_diverse(view.deweys(), matching, 6)
        assert is_diverse(view.deweys(), matching, 6)


class TestScoringModels:
    @pytest.fixture
    def index(self, cars):
        return InvertedIndex.build(cars, figure1_ordering())

    def test_idf_monotone(self):
        assert idf(1, 100) > idf(50, 100) > idf(99, 100) > 0
        assert idf(5, 0) == 0.0

    def test_idf_weights_prefer_rare_terms(self, index):
        query = parse_query(
            "Description CONTAINS 'rare' OR Description CONTAINS 'miles'"
        )
        weighted = idf_weights(query, index)
        weights = {
            leaf.predicate.terms[0]: leaf.weight for leaf in weighted.leaves()
        }
        assert weights["rare"] > weights["miles"] > 0

    def test_idf_weights_multi_token_sum(self, index):
        single = idf_weights(parse_query("Description CONTAINS 'miles'"), index)
        double = idf_weights(parse_query("Description CONTAINS 'good miles'"), index)
        assert double.weight > single.weight

    def test_scalar_leaves_untouched_by_default(self, index):
        query = parse_query("Make = 'Honda' [7] OR Description CONTAINS 'rare'")
        weighted = idf_weights(query, index)
        scalar = [l for l in weighted.leaves() if l.predicate.attribute == "Make"]
        assert scalar[0].weight == 7.0

    def test_include_scalars(self, index):
        query = parse_query("Make = 'Honda' OR Make = 'Toyota'")
        weighted = idf_weights(query, index, include_scalars=True)
        weights = {l.predicate.value: l.weight for l in weighted.leaves()}
        assert weights["Toyota"] > weights["Honda"]  # Toyota is rarer

    def test_idf_weighted_search_end_to_end(self, cars, index):
        engine = DiversityEngine(index)
        query = idf_weights(
            parse_query(
                "Description CONTAINS 'rare' OR Description CONTAINS 'miles'"
            ),
            index,
        )
        result = engine.search(query, k=3, scored=True)
        sres = {
            index.dewey.dewey_of(r): s for r, s in scored_res(cars, query)
        }
        assert is_scored_diverse(result.deweys, sres, 3)
        # The single 'Rare' listing outranks common 'miles' listings.
        assert result[0]["Description"] == "Rare"

    def test_scale_weights(self):
        query = parse_query("a = 1 [2] OR b = 2 [4]")
        scaled = scale_weights(query, 0.5)
        assert [l.weight for l in scaled.leaves()] == [1.0, 2.0]
        with pytest.raises(ValueError):
            scale_weights(query, -1)

    def test_coarsen_weights_buckets(self):
        query = parse_query("a = 1 [1] OR b = 2 [5.2] OR c = 3 [9.9]")
        coarse = coarsen_weights(query, buckets=2)
        weights = sorted({l.weight for l in coarse.leaves()})
        assert len(weights) == 2  # two distinct levels remain

    def test_coarsen_increases_tie_tiers(self):
        query = parse_query("a = 1 [1] OR b = 2 [2] OR c = 3 [3] OR d = 4 [4]")
        coarse = coarsen_weights(query, buckets=1)
        assert len({l.weight for l in coarse.leaves()}) == 1

    def test_coarsen_validation(self):
        query = parse_query("a = 1")
        with pytest.raises(ValueError):
            coarsen_weights(query, buckets=0)

    def test_coarsen_zero_weights_passthrough(self):
        query = parse_query("a = 1 [0]")
        assert coarsen_weights(query, buckets=3) == query
