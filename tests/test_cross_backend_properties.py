"""Cross-backend and persistence property tests.

All three posting-list backends (array, B+-tree, compressed) must drive
every algorithm to equivalent answers, agree on every seek edge case, and
snapshots must round-trip arbitrary relations bit-exactly.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiversityEngine
from repro.core.dewey import MAX_COMPONENT
from repro.core.ordering import DiversityOrdering
from repro.core.similarity import is_diverse, is_scored_diverse
from repro.index.inverted import InvertedIndex
from repro.index.merged import MergedList
from repro.index.postings import BACKENDS, make_posting_list
from repro.index.snapshot import load_index, save_index
from repro.query.evaluate import res, scored_res

from .conftest import RANDOM_ORDERING, random_query, random_relation


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000), st.integers(1, 8))
def test_backends_drive_identical_algorithm_outputs(seed, k):
    """Array vs B+-tree vs compressed: same navigation, same answers."""
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=35)
    query = random_query(rng, weighted=True)
    results = {}
    for backend in BACKENDS:
        index = InvertedIndex.build(
            relation, DiversityOrdering(RANDOM_ORDERING), backend=backend
        )
        engine = DiversityEngine(index)
        results[backend] = (
            engine.search(query, k=k, algorithm="probe").deweys,
            engine.search(query, k=k, algorithm="onepass").deweys,
            engine.search(query, k=k, algorithm="probe", scored=True).deweys,
        )
    for backend in BACKENDS:
        assert results[backend] == results["array"], backend


# ----------------------------------------------------------------------
# Seek edge cases, identical across every backend
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", list(BACKENDS))
def test_seek_edges_on_empty_list(backend):
    plist = make_posting_list((), backend, depth=2)
    assert plist.seek((0, 0)) is None
    assert plist.seek_floor((MAX_COMPONENT, MAX_COMPONENT)) is None
    assert plist.first() is None
    assert plist.last() is None
    assert len(plist) == 0


@pytest.mark.parametrize("backend", list(BACKENDS))
def test_seek_edges_on_single_element(backend):
    plist = make_posting_list([(3, 7)], backend, depth=2)
    assert plist.seek((0, 0)) == (3, 7)          # bound before the element
    assert plist.seek((3, 7)) == (3, 7)          # exact hit
    assert plist.seek((3, 8)) is None            # bound past the element
    assert plist.seek_floor((3, 6)) is None      # floor before the element
    assert plist.seek_floor((3, 7)) == (3, 7)    # exact hit
    assert plist.seek_floor((MAX_COMPONENT, 0)) == (3, 7)
    assert plist.first() == plist.last() == (3, 7)


@pytest.mark.parametrize("backend", list(BACKENDS))
def test_seek_edges_before_first_and_after_last(backend):
    postings = [(2, 1), (4, 0), (4, 9), (8, 3)]
    plist = make_posting_list(postings, backend, depth=2)
    assert plist.seek((0, 0)) == (2, 1)              # before the first
    assert plist.seek_floor((0, 0)) is None
    assert plist.seek((9, 0)) is None                # after the last
    assert plist.seek_floor((MAX_COMPONENT, MAX_COMPONENT)) == (8, 3)


@pytest.mark.parametrize("backend", list(BACKENDS))
def test_seek_exact_hit_vs_strict_successor(backend):
    postings = [(2, 1), (4, 0), (4, 9), (8, 3)]
    plist = make_posting_list(postings, backend, depth=2)
    # seek is inclusive (smallest >= bound) ...
    assert plist.seek((4, 0)) == (4, 0)
    # ... and between stored postings it lands on the strict successor.
    assert plist.seek((4, 1)) == (4, 9)
    assert plist.seek((3, MAX_COMPONENT)) == (4, 0)
    # seek_floor mirrors it: inclusive, else the strict predecessor.
    assert plist.seek_floor((4, 9)) == (4, 9)
    assert plist.seek_floor((4, 8)) == (4, 0)
    assert plist.seek_floor((5, 0)) == (4, 9)


# ----------------------------------------------------------------------
# Hypothesis: interleaved mutations keep array and compressed identical
# ----------------------------------------------------------------------
_DEWEYS = st.tuples(
    st.integers(0, 7), st.integers(0, 7), st.integers(0, 7)
)
_OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "remove", "seek", "floor"]), _DEWEYS),
    max_size=120,
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_DEWEYS, max_size=40), _OPS)
def test_interleaved_mutations_keep_array_and_compressed_identical(seed_postings, ops):
    """Satellite property: after any interleaving of insert/remove/seek,
    the compressed list is state-identical to the array list."""
    arrayed = make_posting_list(sorted(set(seed_postings)), "array", depth=3)
    compressed = make_posting_list(sorted(set(seed_postings)), "compressed", depth=3)
    for op, dewey in ops:
        if op == "insert":
            arrayed.insert(dewey)
            compressed.insert(dewey)
        elif op == "remove":
            assert arrayed.remove(dewey) == compressed.remove(dewey)
        elif op == "seek":
            assert arrayed.seek(dewey) == compressed.seek(dewey)
        else:
            assert arrayed.seek_floor(dewey) == compressed.seek_floor(dewey)
        assert len(arrayed) == len(compressed)
    assert list(arrayed) == list(compressed)
    assert arrayed.first() == compressed.first()
    assert arrayed.last() == compressed.last()


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_snapshot_roundtrip_random_relations(tmp_path_factory, seed):
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=30)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    # Random deletions before persisting.
    for rid in rng.sample(range(len(relation)), k=len(relation) // 4):
        relation.delete(rid)
        index.remove(rid)
    path = tmp_path_factory.mktemp("snapshots") / f"r{seed}.idx"
    save_index(index, path)
    restored = load_index(path)
    assert restored.dewey.all_deweys() == index.dewey.all_deweys()
    assert restored.relation.deleted_rids() == relation.deleted_rids()
    for rid, _ in relation.iter_live():
        assert restored.dewey.dewey_of(rid) == index.dewey.dewey_of(rid)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000), st.integers(1, 6))
def test_pagination_partitions_results_under_deletions(seed, page_size):
    """Pages never overlap, cover everything live, and each page is diverse
    over the remaining universe — even after random deletions."""
    from repro.core.pagination import DiversePaginator

    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=30)
    engine = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    for rid in rng.sample(range(len(relation)), k=len(relation) // 4):
        engine.delete(rid)
    query = random_query(rng)
    full = {engine.index.dewey.dewey_of(r) for r in res(relation, query)}
    paginator = DiversePaginator(engine, query, page_size=page_size)
    seen: set = set()
    remaining = set(full)
    for page in paginator.pages():
        deweys = set(page.deweys)
        assert not deweys & seen
        assert is_diverse(page.deweys, remaining, page_size)
        seen |= deweys
        remaining -= deweys
    assert seen == full
