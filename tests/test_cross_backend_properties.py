"""Cross-backend and persistence property tests.

Both posting-list backends must drive every algorithm to equivalent
answers, and snapshots must round-trip arbitrary relations bit-exactly.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DiversityEngine
from repro.core.ordering import DiversityOrdering
from repro.core.similarity import is_diverse, is_scored_diverse
from repro.index.inverted import InvertedIndex
from repro.index.merged import MergedList
from repro.index.snapshot import load_index, save_index
from repro.query.evaluate import res, scored_res

from .conftest import RANDOM_ORDERING, random_query, random_relation


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000), st.integers(1, 8))
def test_backends_drive_identical_algorithm_outputs(seed, k):
    """Array vs B+-tree postings: same navigation, same diverse answers."""
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=35)
    query = random_query(rng, weighted=True)
    results = {}
    for backend in ("array", "bptree"):
        index = InvertedIndex.build(
            relation, DiversityOrdering(RANDOM_ORDERING), backend=backend
        )
        engine = DiversityEngine(index)
        results[backend] = (
            engine.search(query, k=k, algorithm="probe").deweys,
            engine.search(query, k=k, algorithm="onepass").deweys,
            engine.search(query, k=k, algorithm="probe", scored=True).deweys,
        )
    assert results["array"] == results["bptree"]


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000))
def test_snapshot_roundtrip_random_relations(tmp_path_factory, seed):
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=30)
    index = InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))
    # Random deletions before persisting.
    for rid in rng.sample(range(len(relation)), k=len(relation) // 4):
        relation.delete(rid)
        index.remove(rid)
    path = tmp_path_factory.mktemp("snapshots") / f"r{seed}.idx"
    save_index(index, path)
    restored = load_index(path)
    assert restored.dewey.all_deweys() == index.dewey.all_deweys()
    assert restored.relation.deleted_rids() == relation.deleted_rids()
    for rid, _ in relation.iter_live():
        assert restored.dewey.dewey_of(rid) == index.dewey.dewey_of(rid)


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=1_000_000), st.integers(1, 6))
def test_pagination_partitions_results_under_deletions(seed, page_size):
    """Pages never overlap, cover everything live, and each page is diverse
    over the remaining universe — even after random deletions."""
    from repro.core.pagination import DiversePaginator

    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=30)
    engine = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    for rid in rng.sample(range(len(relation)), k=len(relation) // 4):
        engine.delete(rid)
    query = random_query(rng)
    full = {engine.index.dewey.dewey_of(r) for r in res(relation, query)}
    paginator = DiversePaginator(engine, query, page_size=page_size)
    seen: set = set()
    remaining = set(full)
    for page in paginator.pages():
        deweys = set(page.deweys)
        assert not deweys & seen
        assert is_diverse(page.deweys, remaining, page_size)
        seen |= deweys
        remaining -= deweys
    assert seen == full
