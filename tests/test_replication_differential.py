"""Replication differential suite: exact answers through replica loss.

The acceptance contract of the replication layer, checked end to end under
deterministic chaos: with R >= 2 bit-identical replicas per shard, killing
any *minority* of the replicas of every shard — by hard crash or by an
open circuit breaker — changes nothing.  All five algorithms, scored and
unscored, across shard counts, return answers bit-identical to a
fault-free *unsharded* engine, with ``stats.degraded == False``: failover
is invisible, not a degraded mode.

Hedged reads ride the same contract: with a slow replica and hedging
armed, answers stay exact and no read ever fires more than one backup.

Set ``REPRO_REPLICA_MAX_CASES=N`` to cap the per-test (algorithm, scored)
case list (the CI smoke uses this; locally the full matrix runs).
"""

from __future__ import annotations

import os
import random

import pytest

from repro import DiversityEngine
from repro.core.engine import ALGORITHMS
from repro.observability import MetricsRegistry, use_registry
from repro.resilience import (
    ChaosPolicy,
    ResiliencePolicy,
    ShardFaultSpec,
)
from repro.sharding import ShardedEngine

from .conftest import RANDOM_ORDERING, random_query, random_relation

SHARD_COUNTS = [2, 4]
K_VALUES = [1, 3, 7]

#: Every (algorithm, scored) combination the engines serve.
CASES = [(algorithm, scored)
         for algorithm in ALGORITHMS for scored in (False, True)]
_MAX_CASES = int(os.environ.get("REPRO_REPLICA_MAX_CASES", "0"))
if _MAX_CASES > 0:
    CASES = CASES[:_MAX_CASES]

#: Replica breakers effectively disabled (min_calls above the window): the
#: matrix exercises pure crash-driven failover, deterministic and
#: sequential.
TRANSPARENT = ResiliencePolicy(
    max_retries=10,
    backoff_base_ms=0.01,
    backoff_cap_ms=0.05,
    breaker_window=8,
    breaker_min_calls=9,
)

#: Replica breakers armed and trigger-happy, with a cooldown far beyond
#: the test's lifetime: once opened, a breaker stays open — the
#: "replica killed by open circuit" flavour of the acceptance matrix.
ARMED = ResiliencePolicy(
    max_retries=10,
    backoff_base_ms=0.01,
    backoff_cap_ms=0.05,
    breaker_threshold=0.5,
    breaker_window=4,
    breaker_min_calls=2,
    breaker_cooldown_ms=10_000_000.0,
)


def _payload(result):
    return [
        (item.dewey, item.rid, tuple(sorted(item.values.items())), item.score)
        for item in result
    ]


def _assert_matrix_exact(engine, reference, rng, trials=3):
    """Every algorithm x scored x k: bit-identical and not degraded."""
    for _ in range(trials):
        query = random_query(rng, weighted=rng.random() < 0.5)
        k = rng.choice(K_VALUES)
        for algorithm, scored in CASES:
            expected = reference.search(query, k, algorithm=algorithm,
                                        scored=scored)
            actual = engine.search(query, k, algorithm=algorithm,
                                   scored=scored)
            assert _payload(actual) == _payload(expected), (
                f"algorithm={algorithm} scored={scored} k={k} query={query!r}"
            )
            assert actual.stats["degraded"] is False


def _assert_no_bound_violations(registry):
    assert registry.value("repro_probe_bound_violations_total") == 0
    assert registry.value("repro_onepass_scan_violations_total") == 0


# ----------------------------------------------------------------------
# 1. Crash-killed minority of replicas: bit-identical, never degraded
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("replicas", [2, 3])
def test_minority_replica_crash_is_invisible(shards, replicas):
    registry = MetricsRegistry()
    with use_registry(registry):
        rng = random.Random(900 + 10 * shards + replicas)
        relation = random_relation(rng, max_rows=50)
        reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=shards,
            policy=TRANSPARENT, replicas=replicas,
        )
        chaos = engine.inject_chaos(ChaosPolicy(seed=shards))
        # Kill one replica of EVERY shard — a different one per shard, so
        # both "primary dead" and "follower dead" failover paths run.
        for shard_id in range(shards):
            chaos.crash(shard_id, replica_id=shard_id % replicas)
        _assert_matrix_exact(engine, reference, rng)
        # Failover actually happened wherever the primary copy was killed.
        assert any(
            replica_set.failovers > 0
            for replica_set in engine.sharded_index.shards
        )
        assert chaos.injected["crash"] > 0
        _assert_no_bound_violations(registry)
        engine.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_maximal_minority_crash_with_three_replicas(shards):
    """R=3 with TWO of three copies dead on every shard: still exact."""
    registry = MetricsRegistry()
    with use_registry(registry):
        rng = random.Random(950 + shards)
        relation = random_relation(rng, max_rows=40)
        reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=shards,
            policy=TRANSPARENT, replicas=3,
        )
        chaos = engine.inject_chaos(ChaosPolicy(seed=7))
        survivor = {shard_id: (shard_id + 2) % 3 for shard_id in range(shards)}
        for shard_id in range(shards):
            for replica_id in range(3):
                if replica_id != survivor[shard_id]:
                    chaos.crash(shard_id, replica_id=replica_id)
        _assert_matrix_exact(engine, reference, rng, trials=2)
        _assert_no_bound_violations(registry)
        engine.close()


# ----------------------------------------------------------------------
# 2. Breaker-killed replica (open circuit, no crash): same contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_open_breaker_replica_kill_is_invisible(shards):
    rng = random.Random(1000 + shards)
    relation = random_relation(rng, max_rows=50)
    reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=shards,
        policy=ARMED, replicas=2,
    )
    # Trip replica 0's breaker on every shard by recording hard failures
    # directly — the replica is healthy, its circuit just says no.
    for replica_set in engine.sharded_index.shards:
        breaker = replica_set.breakers[0]
        while breaker.state != "open":
            breaker.record_failure()
    _assert_matrix_exact(engine, reference, rng)
    for replica_set in engine.sharded_index.shards:
        rows = replica_set.health_rows()
        # The open circuit sorts the copy out of the preference order
        # entirely: it is never probed, and the survivor serves everything.
        assert rows[0]["breaker"] == "open"
        assert rows[0]["requests"] == 0
        assert rows[1]["successes"] > 0
    engine.close()


# ----------------------------------------------------------------------
# 3. Crash + flake mix across shards and replicas
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_mixed_crash_and_transient_replicas(shards):
    """A crashed copy on one shard, an always-flaky copy on another —
    replica failover absorbs both without spending engine retries."""
    rng = random.Random(1100 + shards)
    relation = random_relation(rng, max_rows=50)
    reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    engine = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=shards,
        policy=ResiliencePolicy(max_retries=0, breaker_window=8,
                                breaker_min_calls=9),
        replicas=2,
    )
    chaos = engine.inject_chaos(ChaosPolicy(seed=3, per_shard={
        (0, 0): ShardFaultSpec(crashed=True),
        (shards - 1, 0): ShardFaultSpec(transient_rate=1.0),
    }))
    _assert_matrix_exact(engine, reference, rng)
    assert chaos.injected["crash"] > 0
    assert chaos.injected["transient"] > 0
    engine.close()


# ----------------------------------------------------------------------
# 4. Hedged reads under a slow replica: exact, at most one backup/read
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_hedged_reads_stay_exact_and_bounded(shards):
    registry = MetricsRegistry()
    with use_registry(registry):
        rng = random.Random(1200 + shards)
        relation = random_relation(rng, max_rows=50)
        reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=shards,
            policy=TRANSPARENT, replicas=2, hedge_ms=1.0,
        )
        chaos = engine.inject_chaos(ChaosPolicy(seed=5))
        # Latency-only chaos on every primary: failover never triggers,
        # every fired hedge is a genuine backup race.
        for shard_id in range(shards):
            chaos.set_spec((shard_id, 0), ShardFaultSpec(latency_ms=8.0))
        _assert_matrix_exact(engine, reference, rng, trials=2)
        fired = won = wasted = 0
        for replica_set in engine.sharded_index.shards:
            assert replica_set.failovers == 0
            fired += replica_set.hedges_fired
            won += replica_set.hedges_won
            wasted += replica_set.hedges_wasted
            # At most one backup per shard read: with latency-only chaos
            # every read is one primary leg plus at most one backup leg,
            # so backups can never outnumber half of all replica calls.
            requests = sum(
                row["requests"] for row in replica_set.health_rows()
            )
            assert 2 * replica_set.hedges_fired <= requests
        assert fired > 0
        assert won + wasted <= fired
        assert registry.value(
            "repro_replica_hedges_total", outcome="fired") == fired
        _assert_no_bound_violations(registry)
        engine.close()


# ----------------------------------------------------------------------
# 5. Deterministic replay: same seed, same faults, same failovers
# ----------------------------------------------------------------------
def test_replicated_chaos_is_deterministic():
    """On a fake clock (EWMA latencies pinned at zero, so the replica
    preference order never depends on wall time), the whole failure path
    replays exactly: same faults drawn, same failovers, same answers."""
    from repro.observability import FakeClock

    relation = random_relation(random.Random(71), max_rows=40)
    queries = [random_query(random.Random(90 + i)) for i in range(5)]

    def run():
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=2,
            policy=TRANSPARENT, replicas=2, clock=FakeClock(),
        )
        chaos = engine.inject_chaos(ChaosPolicy(seed=13, per_shard={
            (0, 0): ShardFaultSpec(transient_rate=0.4),
            (1, 1): ShardFaultSpec(crashed=True),
        }))
        payloads = [
            _payload(engine.search(query, 5, algorithm=algorithm))
            for query in queries
            for algorithm in ("naive", "probe")
        ]
        failovers = [
            replica_set.failovers
            for replica_set in engine.sharded_index.shards
        ]
        injected = dict(chaos.injected)
        engine.close()
        return payloads, failovers, injected

    first = run()
    second = run()
    assert first == second
    assert first[2]["transient"] > 0
