"""Satellite suite: sharded snapshot round trips.

A sharded deployment persisted through per-shard snapshots (plus empty
WALs) and recovered must answer every query bit-identically to the
original, for both routers, several shard counts and all five diversity
algorithms, scored and unscored."""

import pytest

from repro.core.engine import ALGORITHMS
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.durability import create_sharded_store, recover
from repro.sharding import ShardedEngine, ShardedIndex

QUERIES = [
    "Make = 'Honda'",
    "Color = 'Green'",
    "Make = 'Honda' AND Model = 'Civic'",
    "Color = 'Green' OR Description CONTAINS 'miles'",
    "Description CONTAINS 'clean'",
]


def _answers(index, algorithm, scored):
    engine = ShardedEngine(index)
    try:
        return [
            [
                (item.dewey, item.rid, tuple(sorted(item.values.items())), item.score)
                for item in engine.search(
                    query, k=4, algorithm=algorithm, scored=scored
                ).items
            ]
            for query in QUERIES
        ]
    finally:
        engine.close()


@pytest.mark.parametrize("router", ["hash", "range"])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_roundtrip_bit_identical(tmp_path, router, shards):
    relation = figure1_relation()
    index = ShardedIndex.build(
        relation, figure1_ordering(), shards=shards, router=router
    )
    create_sharded_store(index, tmp_path / "cluster")
    for shard in index.shards:
        shard.close()
    recovered = recover(tmp_path / "cluster")

    assert recovered.num_shards == index.num_shards
    assert list(recovered.relation) == list(index.relation)
    for algorithm in ALGORITHMS:
        for scored in (False, True):
            assert _answers(recovered, algorithm, scored) == _answers(
                index, algorithm, scored
            ), f"{algorithm} scored={scored} diverged after round trip"


@pytest.mark.parametrize("router", ["hash", "range"])
def test_roundtrip_after_mutations(tmp_path, router):
    relation = figure1_relation()
    index = ShardedIndex.build(
        relation, figure1_ordering(), shards=2, router=router
    )
    create_sharded_store(index, tmp_path / "cluster")
    for row in [
        ("Tesla", "ModelS", "Red", 2008, "rare electric clean"),
        ("Kia", "Rio", "Green", 2006, "cheap commuter"),
    ]:
        index.insert(relation.insert(row))
    relation.delete(3)
    index.remove(3)
    for shard in index.shards:
        shard.close()
    recovered = recover(tmp_path / "cluster")
    for algorithm in ALGORITHMS:
        assert _answers(recovered, algorithm, True) == _answers(
            index, algorithm, True
        )
