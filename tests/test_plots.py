"""Tests for the ASCII chart renderer."""

import pytest

from repro.bench.figures import FigureResult
from repro.bench.plots import render_ascii_chart


@pytest.fixture
def figure():
    return FigureResult(
        figure="fig6",
        title="Varying k (Unscored)",
        x_label="number of results k",
        x_values=[1, 10, 100],
        series={
            "UNaive": [2.0, 2.0, 2.0],
            "UProbe": [0.002, 0.01, 0.14],
        },
    )


class TestRenderAsciiChart:
    def test_contains_title_axis_legend(self, figure):
        chart = render_ascii_chart(figure)
        assert "fig6" in chart
        assert "number of results k" in chart
        assert "o=UNaive" in chart and "x=UProbe" in chart

    def test_log_scale_separates_series(self, figure):
        chart = render_ascii_chart(figure, log_y=True)
        plot_rows = [
            (i, line.split("|", 1)[1])
            for i, line in enumerate(chart.splitlines())
            if "|" in line
        ]
        # The flat UNaive series sits on a single row near the top; UProbe
        # rises but stays below it.
        naive_rows = [i for i, body in plot_rows if "o" in body]
        probe_rows = [i for i, body in plot_rows if "x" in body]
        assert naive_rows and probe_rows
        assert min(probe_rows) > max(naive_rows)

    def test_linear_scale(self, figure):
        chart = render_ascii_chart(figure, log_y=False)
        assert "log-scale" not in chart

    def test_overlap_marker(self):
        result = FigureResult(
            figure="f", title="t", x_label="x", x_values=[1],
            series={"A": [1.0], "B": [1.0]},
        )
        assert "!" in render_ascii_chart(result)

    def test_single_point(self):
        result = FigureResult(
            figure="f", title="t", x_label="x", x_values=[5],
            series={"A": [3.0]},
        )
        chart = render_ascii_chart(result)
        assert "5" in chart

    def test_empty_series(self):
        result = FigureResult(
            figure="f", title="t", x_label="x", x_values=[], series={},
        )
        assert "(no data)" in render_ascii_chart(result)

    def test_zero_values_fall_back_to_linear(self):
        result = FigureResult(
            figure="f", title="t", x_label="x", x_values=[1, 2],
            series={"A": [0.0, 0.0]},
        )
        chart = render_ascii_chart(result, log_y=True)
        assert "log-scale" not in chart

    def test_size_validation(self, figure):
        with pytest.raises(ValueError):
            render_ascii_chart(figure, width=5)
        with pytest.raises(ValueError):
            render_ascii_chart(figure, height=2)

    def test_cli_plot_flag(self, capsys):
        import os

        from repro.bench.__main__ import main

        os.environ["REPRO_BENCH_ROWS"] = "300"
        os.environ["REPRO_BENCH_QUERIES"] = "2"
        try:
            assert main(["abl-probes", "--plot"]) == 0
        finally:
            del os.environ["REPRO_BENCH_ROWS"]
            del os.environ["REPRO_BENCH_QUERIES"]
        out = capsys.readouterr().out
        assert "legend:" in out
