"""Tests for merged-list navigation: cursors, bidirectional next, scored
variants — all validated against brute-force reference evaluation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dewey import LEFT, RIGHT, maxes, predecessor, successor, zeros
from repro.index.inverted import InvertedIndex
from repro.index.merged import (
    AndCursor,
    LeafCursor,
    MergedList,
    OrCursor,
    compile_cursor,
)
from repro.index.postings import ArrayPostingList
from repro.query.evaluate import res, scored_res
from repro.query.parser import parse_query
from repro.query.query import Query

from .conftest import RANDOM_ORDERING, random_query, random_relation


def build(relation):
    from repro.core.ordering import DiversityOrdering

    return InvertedIndex.build(relation, DiversityOrdering(RANDOM_ORDERING))


class TestCursors:
    def test_leaf_cursor(self):
        cursor = LeafCursor(ArrayPostingList([(0, 1), (2, 3), (5, 0)]))
        assert cursor.next((0, 0), LEFT) == (0, 1)
        assert cursor.next((3, 0), LEFT) == (5, 0)
        assert cursor.next((9, 9), LEFT) is None
        assert cursor.next((3, 0), RIGHT) == (2, 3)
        assert cursor.next((0, 0), RIGHT) is None

    def test_and_cursor_leapfrog(self):
        a = LeafCursor(ArrayPostingList([(0,), (2,), (4,), (6,)]))
        b = LeafCursor(ArrayPostingList([(1,), (2,), (5,), (6,)]))
        both = AndCursor([a, b])
        assert both.next((0,), LEFT) == (2,)
        assert both.next((3,), LEFT) == (6,)
        assert both.next((7,), LEFT) is None
        assert both.next((5,), RIGHT) == (2,)

    def test_and_cursor_empty_child(self):
        cursor = AndCursor(
            [LeafCursor(ArrayPostingList([(1,)])), LeafCursor(ArrayPostingList([]))]
        )
        assert cursor.next((0,), LEFT) is None

    def test_or_cursor(self):
        a = LeafCursor(ArrayPostingList([(0,), (4,)]))
        b = LeafCursor(ArrayPostingList([(2,), (6,)]))
        either = OrCursor([a, b])
        assert either.next((1,), LEFT) == (2,)
        assert either.next((0,), LEFT) == (0,)
        assert either.next((5,), RIGHT) == (4,)
        assert either.next((7,), LEFT) is None

    def test_constructors_reject_empty(self):
        with pytest.raises(ValueError):
            AndCursor([])
        with pytest.raises(ValueError):
            OrCursor([])

    def test_bad_direction_rejected(self):
        cursor = LeafCursor(ArrayPostingList([(1,)]))
        with pytest.raises(ValueError):
            cursor.next((0,), "MIDDLE")


def scan_all(merged):
    out = []
    cur = merged.first()
    while cur is not None:
        out.append(cur)
        cur = merged.next(successor(cur))
    return out


def scan_all_right(merged):
    out = []
    cur = merged.next(maxes(merged.depth), RIGHT)
    while cur is not None:
        out.append(cur)
        prev = predecessor(cur)
        if prev is None:
            break
        cur = merged.next(prev, RIGHT)
    return out


class TestMergedListOnFigure1:
    def test_scan_matches_reference(self, cars, cars_index):
        for text in [
            "Make = 'Honda'",
            "Year = 2007 AND Description CONTAINS 'miles'",
            "Make = 'Toyota' OR Description CONTAINS 'rare'",
            "Description CONTAINS 'low miles'",
        ]:
            query = parse_query(text)
            merged = MergedList(query, cars_index)
            expected = sorted(
                cars_index.dewey.dewey_of(rid) for rid in res(cars, query)
            )
            assert scan_all(merged) == expected

    def test_right_scan_is_reverse(self, cars, cars_index):
        query = parse_query("Year = 2007")
        merged = MergedList(query, cars_index)
        assert scan_all_right(merged) == list(reversed(scan_all(merged)))

    def test_contains(self, cars, cars_index):
        query = parse_query("Make = 'Toyota'")
        merged = MergedList(query, cars_index)
        toyota = cars_index.dewey.dewey_of(11)
        honda = cars_index.dewey.dewey_of(0)
        assert merged.contains(toyota)
        assert not merged.contains(honda)

    def test_score(self, cars, cars_index):
        query = parse_query("Make = 'Toyota' [2] OR Description CONTAINS 'miles'")
        merged = MergedList(query, cars_index)
        toyota_miles = cars_index.dewey.dewey_of(11)
        honda_miles = cars_index.dewey.dewey_of(0)
        assert merged.score(toyota_miles) == 3.0
        assert merged.score(honda_miles) == 1.0

    def test_stats_counted(self, cars_index):
        merged = MergedList(parse_query("Make = 'Honda'"), cars_index)
        merged.first()
        merged.next(zeros(merged.depth))
        assert merged.next_calls == 2
        merged.reset_stats()
        assert merged.next_calls == 0

    def test_match_all_query(self, cars, cars_index):
        merged = MergedList(Query.match_all(), cars_index)
        assert len(scan_all(merged)) == len(cars)


class TestScoredNavigation:
    @pytest.fixture
    def merged(self, cars_index):
        query = parse_query(
            "Make = 'Toyota' [2] OR Description CONTAINS 'miles' [1] OR Year = 2006 [1]"
        )
        return MergedList(query, cars_index)

    def brute(self, merged, theta, strict):
        matches = scan_all(merged)
        keep = []
        for dewey in matches:
            score = merged.score(dewey)
            if score > theta if strict else score >= theta:
                keep.append(dewey)
        return keep

    @pytest.mark.parametrize("theta", [0.5, 1.0, 2.0, 3.0, 4.0])
    @pytest.mark.parametrize("strict", [False, True])
    def test_next_scored_left_matches_brute(self, merged, theta, strict):
        expected = self.brute(merged, theta, strict)
        got = []
        cur = merged.next_scored(zeros(merged.depth), LEFT, theta, strict)
        while cur is not None:
            got.append(cur)
            cur = merged.next_scored(successor(cur), LEFT, theta, strict)
        assert got == expected

    @pytest.mark.parametrize("theta", [1.0, 2.0, 3.0])
    def test_next_scored_right_matches_brute(self, merged, theta):
        expected = list(reversed(self.brute(merged, theta, False)))
        got = []
        cur = merged.next_scored(maxes(merged.depth), RIGHT, theta, False)
        while cur is not None:
            got.append(cur)
            prev = predecessor(cur)
            if prev is None:
                break
            cur = merged.next_scored(prev, RIGHT, theta, False)
        assert got == expected

    def test_next_scored_above_max_is_none(self, merged):
        assert merged.next_scored(zeros(merged.depth), LEFT, 99.0) is None

    def test_next_onepass_scored_semantics(self, merged):
        """Smallest id with score > theta, or score == theta beyond skip."""
        matches = scan_all(merged)
        theta = 2.0
        skip = matches[len(matches) // 2]
        expected = None
        for dewey in matches:
            score = merged.score(dewey)
            if score > theta or (score == theta and dewey >= skip):
                expected = (dewey, score)
                break
        assert merged.next_onepass_scored(zeros(merged.depth), skip, theta) == expected

    def test_next_onepass_scored_none_skip_means_strict(self, merged):
        theta = merged.max_score()
        assert merged.next_onepass_scored(zeros(merged.depth), None, theta) is None


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_randomized_navigation_against_reference(seed):
    """Scans (both directions) and scored filtering agree with full-scan
    evaluation on random relations and queries."""
    rng = random.Random(seed)
    relation = random_relation(rng, max_rows=30)
    index = build(relation)
    query = random_query(rng, weighted=True)
    merged = MergedList(query, index)
    expected = sorted(index.dewey.dewey_of(rid) for rid in res(relation, query))
    assert scan_all(merged) == expected
    assert scan_all_right(merged) == list(reversed(expected))
    scored = {
        index.dewey.dewey_of(rid): score for rid, score in scored_res(relation, query)
    }
    if scored:
        theta = sorted(scored.values())[len(scored) // 2]
        expected_tier = [d for d in expected if scored[d] >= theta]
        got = []
        cur = merged.next_scored(zeros(merged.depth), LEFT, theta)
        while cur is not None:
            got.append(cur)
            cur = merged.next_scored(successor(cur), LEFT, theta)
        assert got == expected_tier
