"""Unit tests for the compressed posting-list backend.

The randomized oracle is :class:`ArrayPostingList`: every seek answer,
iteration order and mutation outcome of :class:`CompressedPostingList`
must match it exactly, including probes carrying the ``MAX_COMPONENT``
sentinel that saturates packed key fields.
"""

import random

import pytest

from repro.core.dewey import MAX_COMPONENT
from repro.index.compressed import (
    BLOCK,
    MIN_COMPACTION,
    PACKED_FORMAT,
    PACKED_VERSION,
    CompressedPostingList,
)
from repro.index.postings import ArrayPostingList


def random_postings(rng, depth, count, span=None):
    span = span if span is not None else max(4, count)
    postings = {
        tuple(rng.randrange(span) for _ in range(depth)) for _ in range(count)
    }
    return sorted(postings)


def random_probe(rng, depth, span):
    """A seek bound; may carry MAX_COMPONENT the way region bounds do."""
    probe = [rng.randrange(span + 2) for _ in range(depth)]
    if rng.random() < 0.3:
        level = rng.randrange(depth)
        for position in range(level, depth):
            probe[position] = MAX_COMPONENT
    return tuple(probe)


# ----------------------------------------------------------------------
# Construction and round-trips
# ----------------------------------------------------------------------
def test_roundtrips_postings_across_block_boundaries():
    rng = random.Random(7)
    for count in (0, 1, BLOCK - 1, BLOCK, BLOCK + 1, 3 * BLOCK + 5):
        postings = random_postings(rng, 3, count, span=50)
        plist = CompressedPostingList(postings, depth=3)
        assert list(plist) == postings
        assert len(plist) == len(postings)


def test_duplicates_collapse_and_input_order_is_irrelevant():
    postings = [(2, 1), (0, 3), (2, 1), (1, 1), (0, 3)]
    plist = CompressedPostingList(postings)
    assert list(plist) == [(0, 3), (1, 1), (2, 1)]


def test_empty_without_depth_is_rejected():
    with pytest.raises(ValueError, match="depth"):
        CompressedPostingList()
    assert list(CompressedPostingList(depth=2)) == []


def test_mixed_depths_are_rejected():
    with pytest.raises(ValueError, match="depth"):
        CompressedPostingList([(1, 2), (1, 2, 3)])
    plist = CompressedPostingList([(1, 2)])
    with pytest.raises(ValueError, match="depth"):
        plist.insert((1, 2, 3))


def test_first_last_contains_and_membership():
    postings = [(0, 5), (3, 1), (7, 2)]
    plist = CompressedPostingList(postings)
    assert plist.first() == (0, 5)
    assert plist.last() == (7, 2)
    assert (3, 1) in plist
    assert (3, 2) not in plist
    empty = CompressedPostingList(depth=2)
    assert empty.first() is None
    assert empty.last() is None


# ----------------------------------------------------------------------
# Seek oracle (including saturating MAX_COMPONENT probes)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("depth", [1, 2, 3, 5])
def test_seek_matches_array_oracle(depth):
    rng = random.Random(100 + depth)
    for _ in range(40):
        count = rng.randrange(0, 4 * BLOCK)
        span = rng.choice([3, 10, 1000, 2**40])
        postings = random_postings(rng, depth, count, span=span)
        oracle = ArrayPostingList(postings)
        plist = CompressedPostingList(postings, depth=depth)
        for _ in range(60):
            probe = random_probe(rng, depth, span)
            assert plist.seek(probe) == oracle.seek(probe), probe
            assert plist.seek_floor(probe) == oracle.seek_floor(probe), probe


def test_seek_is_stateless_despite_the_hint():
    """The gallop hint is a pure accelerator: probe order never matters."""
    rng = random.Random(5)
    postings = random_postings(rng, 2, 300, span=1000)
    oracle = ArrayPostingList(postings)
    plist = CompressedPostingList(postings, depth=2)
    probes = [random_probe(rng, 2, 1000) for _ in range(50)]
    forward = [plist.seek(p) for p in probes]
    backward = [plist.seek(p) for p in reversed(probes)]
    assert forward == [oracle.seek(p) for p in probes]
    assert backward == [oracle.seek(p) for p in reversed(probes)]


# ----------------------------------------------------------------------
# Mutation: tail buffer, tombstones, compaction
# ----------------------------------------------------------------------
def test_insert_remove_oracle_under_interleaving():
    rng = random.Random(11)
    oracle = ArrayPostingList()
    plist = CompressedPostingList(depth=3)
    for step in range(600):
        dewey = tuple(rng.randrange(12) for _ in range(3))
        if rng.random() < 0.6:
            oracle.insert(dewey)
            plist.insert(dewey)
        else:
            assert plist.remove(dewey) == oracle.remove(dewey)
        if step % 37 == 0:
            assert list(plist) == list(oracle)
            probe = random_probe(rng, 3, 12)
            assert plist.seek(probe) == oracle.seek(probe)
            assert plist.seek_floor(probe) == oracle.seek_floor(probe)
    assert list(plist) == list(oracle)


def test_segment_reinsertion_undoes_tombstone():
    postings = [(i,) for i in range(10)]
    plist = CompressedPostingList(postings)
    assert plist.remove((4,))
    assert (4,) not in plist
    plist.insert((4,))
    assert (4,) in plist
    assert list(plist) == postings


def test_compaction_merges_tail_and_tombstones():
    base = [(i, 0) for i in range(0, 400, 2)]
    plist = CompressedPostingList(base)
    for i in range(1, 2 * MIN_COMPACTION + 10, 2):
        plist.insert((i, 0))
    for i in range(0, 40, 2):
        plist.remove((i, 0))
    plist.compact()
    assert plist._tail == [] and plist._deleted == set()
    expected = sorted(
        ({(i, 0) for i in range(0, 400, 2)}
         | {(i, 0) for i in range(1, 2 * MIN_COMPACTION + 10, 2)})
        - {(i, 0) for i in range(0, 40, 2)}
    )
    assert list(plist) == expected


def test_remove_everything_leaves_a_working_empty_list():
    postings = [(i,) for i in range(5)]
    plist = CompressedPostingList(postings)
    for dewey in postings:
        assert plist.remove(dewey)
    assert len(plist) == 0
    assert plist.seek((0,)) is None
    assert plist.seek_floor((MAX_COMPONENT,)) is None
    plist.insert((3,))
    assert list(plist) == [(3,)]


def test_memory_bytes_is_far_below_the_tuple_representation():
    rng = random.Random(3)
    postings = random_postings(rng, 4, 5000, span=3000)
    compressed = CompressedPostingList(postings, depth=4)
    arrayed = ArrayPostingList(postings)
    assert compressed.memory_bytes() < arrayed.memory_bytes() / 2


def test_wide_components_fall_back_to_bigint_keys():
    """Packed widths past 64 bits switch keys to a plain int list."""
    postings = [(i, 2**40 + i, 2**50 - i) for i in range(100)]
    plist = CompressedPostingList(postings)
    assert list(plist) == postings
    oracle = ArrayPostingList(postings)
    for probe in [(0, 0, 0), (50, 2**40, 0), (99, 2**41, 2**50),
                  (MAX_COMPONENT,) * 3]:
        assert plist.seek(probe) == oracle.seek(probe)
        assert plist.seek_floor(probe) == oracle.seek_floor(probe)


# ----------------------------------------------------------------------
# Packed wire format
# ----------------------------------------------------------------------
def test_packed_state_roundtrip():
    rng = random.Random(21)
    postings = random_postings(rng, 3, 700, span=500)
    plist = CompressedPostingList(postings, depth=3)
    plist.insert((501, 0, 0))           # dirty state: roundtrip compacts
    plist.remove(postings[0])
    state = plist.packed_state()
    assert state["format"] == PACKED_FORMAT
    assert state["version"] == PACKED_VERSION
    restored = CompressedPostingList.from_packed_state(state)
    assert list(restored) == list(plist)
    assert len(restored) == len(plist)


def test_packed_state_roundtrip_empty():
    plist = CompressedPostingList(depth=4)
    restored = CompressedPostingList.from_packed_state(plist.packed_state())
    assert list(restored) == []
    restored.insert((1, 2, 3, 4))
    assert len(restored) == 1


def test_from_packed_state_rejects_malformed_documents():
    plist = CompressedPostingList([(1, 2), (3, 4)])
    good = plist.packed_state()

    with pytest.raises(ValueError, match="not a"):
        CompressedPostingList.from_packed_state({**good, "format": "nope"})
    with pytest.raises(ValueError, match="version"):
        CompressedPostingList.from_packed_state({**good, "version": 99})
    with pytest.raises(ValueError, match="block size"):
        CompressedPostingList.from_packed_state({**good, "block": BLOCK * 2})
    with pytest.raises(ValueError, match="truncated"):
        CompressedPostingList.from_packed_state({**good, "count": good["count"] + 5})
    import base64

    padded = base64.b64decode(good["data"]) + b"\x00"
    with pytest.raises(ValueError, match="trailing"):
        CompressedPostingList.from_packed_state(
            {**good, "data": base64.b64encode(padded).decode("ascii")}
        )
    with pytest.raises(ValueError, match="declares 0"):
        CompressedPostingList.from_packed_state({**good, "count": 0})


def test_from_packed_state_rejects_out_of_range_shared_prefix():
    import base64

    from repro.index.compressed import _encode_varint

    data = bytearray()
    _encode_varint(3, data)      # first posting: (3, 9)
    _encode_varint(9, data)
    _encode_varint(5, data)      # shared=5 out of range for depth 2
    _encode_varint(0, data)
    state = {
        "format": PACKED_FORMAT,
        "version": PACKED_VERSION,
        "depth": 2,
        "block": BLOCK,
        "count": 2,
        "data": base64.b64encode(bytes(data)).decode("ascii"),
    }
    with pytest.raises(ValueError, match="shared-prefix"):
        CompressedPostingList.from_packed_state(state)


def test_from_packed_state_rejects_non_increasing_block_boundary():
    """Within a block the delta coding is increasing by construction; a
    regression can only hide at a block boundary, where the first posting
    is stored absolute and may sort below its predecessor."""
    import base64

    from repro.index.compressed import _encode_varint

    data = bytearray()
    _encode_varint(0, data)                  # block 0 first posting: (0,)
    for _ in range(BLOCK - 1):               # then (1,), (2,), ... by delta
        _encode_varint(0, data)              # shared = 0
        _encode_varint(0, data)              # delta -> previous + 1
    _encode_varint(10, data)                 # block 1 absolute: (10,) <= (63,)
    state = {
        "format": PACKED_FORMAT,
        "version": PACKED_VERSION,
        "depth": 1,
        "block": BLOCK,
        "count": BLOCK + 1,
        "data": base64.b64encode(bytes(data)).decode("ascii"),
    }
    with pytest.raises(ValueError, match="not strictly increasing"):
        CompressedPostingList.from_packed_state(state)
