"""Tests for query relaxation."""

import pytest

from repro.core.relaxation import relax_query, relaxed_search
from repro.query.parser import parse_query
from repro.query.query import AND, LEAF, OR


class TestRelaxQuery:
    def test_and_becomes_or(self):
        query = parse_query("Make = 'Honda' AND Year = 2007")
        relaxed = relax_query(query)
        assert relaxed.kind == OR
        assert len(relaxed.children) == 2

    def test_leaf_unchanged(self):
        query = parse_query("Make = 'Honda'")
        assert relax_query(query) is query

    def test_weights_preserved(self):
        query = parse_query("Make = 'Honda' [3] AND Year = 2007 [2]")
        relaxed = relax_query(query)
        assert sorted(child.weight for child in relaxed.children) == [2.0, 3.0]

    def test_nested_tree_flattened_to_or(self):
        query = parse_query("(a = 1 OR b = 2) AND c = 3")
        relaxed = relax_query(query)
        assert relaxed.kind == OR
        assert all(child.kind == LEAF for child in relaxed.children)


class TestRelaxedSearch:
    def test_no_relaxation_when_enough_matches(self, cars_engine):
        outcome = relaxed_search(cars_engine, "Make = 'Honda'", k=5)
        assert not outcome.relaxed
        assert len(outcome.result) == 5
        assert outcome.strict_matches == 5

    def test_relaxes_when_too_few_matches(self, cars_engine):
        # Only one 'Rare' listing; ask for 4.
        outcome = relaxed_search(
            cars_engine, "Make = 'Honda' AND Description CONTAINS 'Rare'", k=4
        )
        assert outcome.relaxed
        assert outcome.strict_matches == 1
        assert len(outcome.result) == 4
        # The exact match (Odyssey 'Rare', satisfying both predicates)
        # scores 2 and leads the relaxed ranking.
        top = outcome.result[0]
        assert top["Description"] == "Rare"
        assert top.score == 2.0

    def test_relaxed_results_prefer_more_predicates(self, cars_engine):
        outcome = relaxed_search(
            cars_engine,
            "Make = 'Toyota' AND Description CONTAINS 'miles' AND Year = 2006",
            k=6,
        )
        assert outcome.relaxed
        scores = [item.score for item in outcome.result]
        assert scores == sorted(scores, reverse=True)
        # Toyotas satisfy 2 of 3 predicates (Toyota + miles, 2007).
        assert scores[0] == 2.0

    def test_empty_even_after_relaxation(self, cars_engine):
        outcome = relaxed_search(cars_engine, "Make = 'Tesla'", k=3)
        assert outcome.relaxed
        assert len(outcome.result) == 0

    def test_parses_string_queries(self, cars_engine):
        outcome = relaxed_search(cars_engine, "Make = 'Honda'", k=2)
        assert len(outcome.result) == 2

    @pytest.mark.parametrize("algorithm", ["probe", "onepass", "naive"])
    def test_all_algorithms(self, cars_engine, algorithm):
        outcome = relaxed_search(
            cars_engine,
            "Make = 'Honda' AND Description CONTAINS 'Rare'",
            k=3,
            algorithm=algorithm,
        )
        assert outcome.relaxed
        assert len(outcome.result) == 3
