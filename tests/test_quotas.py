"""Unit tests for the per-tenant token-bucket quota board.

The server contract tests (test_server.py) exercise quotas end to end
over HTTP; this file pins the board's own semantics — refill arithmetic
under a fake clock, the LRU bound on tenant state, and the snapshot
diagnostics surface.
"""

from __future__ import annotations

import math

import pytest

from repro.observability import FakeClock
from repro.server.quotas import (
    ANONYMOUS_TENANT,
    DEFAULT_MAX_TENANTS,
    TenantQuotas,
    TokenBucket,
)


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=3.0, now=0.0)
        assert [bucket.take(0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        # Bucket empty: the hint prices one full token at the refill rate.
        assert bucket.take(0.0) == pytest.approx(500.0)
        # 0.25 s later half a token has landed; half a token remains due.
        assert bucket.take(0.25) == pytest.approx(250.0)
        # Rejected takes spend nothing: the half token is still there, a
        # further second adds two more, and the grant spends exactly one.
        assert bucket.take(1.25) == 0.0
        assert bucket.tokens == pytest.approx(1.5)

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0, now=0.0)
        assert bucket.take(1000.0) == 0.0
        assert bucket.tokens == pytest.approx(1.0)  # capped at burst, -1 spent

    def test_zero_rate_bucket_starves_forever(self):
        bucket = TokenBucket(rate_per_s=0.0, burst=1.0, now=0.0)
        assert bucket.take(0.0) == 0.0
        assert bucket.take(100.0) == math.inf

    def test_clock_going_backwards_is_tolerated(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=1.0, now=10.0)
        assert bucket.take(5.0) == 0.0  # negative elapsed clamps to zero


class TestTenantQuotas:
    def test_disabled_board_admits_everything_statelessly(self):
        quotas = TenantQuotas(rate_per_s=0.0, clock=FakeClock())
        assert not quotas.enabled
        for _ in range(100):
            assert quotas.check("tenant-a") == 0.0
        assert len(quotas) == 0  # no per-tenant state accrues
        assert quotas.rejected == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuotas(rate_per_s=1.0, burst=0.5)
        with pytest.raises(ValueError):
            TenantQuotas(max_tenants=0)
        # A fractional burst is fine while quotas are disabled.
        assert not TenantQuotas(rate_per_s=0.0, burst=0.5).enabled

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=1.0, burst=2.0, clock=clock)
        assert quotas.check("a") == 0.0
        assert quotas.check("a") == 0.0
        assert quotas.check("a") > 0.0          # a exhausted...
        assert quotas.check("b") == 0.0         # ...b unaffected
        assert quotas.rejected == 1

    def test_unnamed_callers_share_the_anonymous_bucket(self):
        quotas = TenantQuotas(rate_per_s=1.0, burst=1.0, clock=FakeClock())
        assert quotas.check(None) == 0.0
        assert quotas.check("") > 0.0           # falsy key, same bucket
        assert list(quotas.snapshot()) == [ANONYMOUS_TENANT]

    def test_refill_under_fake_clock(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=2.0, burst=1.0, clock=clock)
        assert quotas.check("a") == 0.0
        hint = quotas.check("a")
        assert hint == pytest.approx(500.0)     # one token at 2/s
        clock.advance(0.5)
        assert quotas.check("a") == 0.0         # the promised token landed
        clock.advance(0.25)
        assert quotas.check("a") == pytest.approx(250.0)

    def test_retry_after_hint_is_exact(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=4.0, burst=1.0, clock=clock)
        quotas.check("a")
        hint_ms = quotas.check("a")
        clock.advance(hint_ms / 1000.0)
        assert quotas.check("a") == 0.0         # waiting the hint out works

    def test_lru_eviction_at_capacity(self):
        clock = FakeClock()
        quotas = TenantQuotas(
            rate_per_s=1.0, burst=1.0, clock=clock, max_tenants=3
        )
        for tenant in ("a", "b", "c"):
            quotas.check(tenant)
        assert len(quotas) == 3
        quotas.check("a")        # touch a: b is now the least recent
        quotas.check("d")        # capacity exceeded -> b evicted
        assert len(quotas) == 3
        assert set(quotas.snapshot()) == {"a", "c", "d"}

    def test_eviction_resets_to_a_full_bucket(self):
        """An evicted tenant returns to a fresh (full) bucket — strictly
        more permissive than remembered state, never less."""
        clock = FakeClock()
        quotas = TenantQuotas(
            rate_per_s=0.001, burst=1.0, clock=clock, max_tenants=1
        )
        assert quotas.check("a") == 0.0
        assert quotas.check("a") > 0.0   # exhausted for ~1000 s
        quotas.check("b")                # evicts a
        assert quotas.check("a") == 0.0  # back with a full bucket

    def test_snapshot_reports_elapsed_refill_without_mutating(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=2.0, burst=4.0, clock=clock)
        quotas.check("a")                       # 3 tokens left
        quotas.check("a")                       # 2 tokens left
        clock.advance(0.5)                      # +1 token elapsed
        snapshot = quotas.snapshot()
        assert snapshot["a"] == pytest.approx(3.0)
        # Snapshot is read-only: the bucket still holds its stamped state.
        assert quotas.check("a") == 0.0
        assert quotas.snapshot()["a"] == pytest.approx(2.0)

    def test_snapshot_levels_cap_at_burst(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=10.0, burst=2.0, clock=clock)
        quotas.check("a")
        clock.advance(100.0)
        assert quotas.snapshot()["a"] == pytest.approx(2.0)

    def test_default_capacity(self):
        assert TenantQuotas().__class__ is TenantQuotas
        assert DEFAULT_MAX_TENANTS == 1024
        quotas = TenantQuotas(rate_per_s=1.0, burst=1.0, clock=FakeClock())
        assert quotas._max_tenants == DEFAULT_MAX_TENANTS
