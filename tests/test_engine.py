"""End-to-end tests for the DiversityEngine facade and result objects."""

import pytest

from repro import ALGORITHMS, DiversityEngine, Query
from repro.core.similarity import is_diverse, is_scored_diverse
from repro.query.evaluate import res, scored_res
from repro.query.parser import parse_query


class TestSearch:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_unscored_all_algorithms(self, cars, cars_engine, algorithm):
        result = cars_engine.search("Year = 2007", k=6, algorithm=algorithm)
        full = [
            cars_engine.index.dewey.dewey_of(r)
            for r in res(cars, parse_query("Year = 2007"))
        ]
        assert result.algorithm == algorithm
        assert len(result) == 6
        if algorithm != "basic":  # Basic gives no diversity guarantee
            assert is_diverse(result.deweys, full, 6)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_scored_all_algorithms(self, cars, cars_engine, algorithm):
        text = "Make = 'Toyota' [2] OR Description CONTAINS 'miles'"
        result = cars_engine.search(text, k=5, algorithm=algorithm, scored=True)
        sres = {
            cars_engine.index.dewey.dewey_of(r): s
            for r, s in scored_res(cars, parse_query(text))
        }
        assert len(result) == 5
        best = sum(sorted(sres.values(), reverse=True)[:5])
        assert sum(item.score for item in result) == pytest.approx(best)
        if algorithm != "basic":
            assert is_scored_diverse(result.deweys, sres, 5)

    def test_accepts_query_objects(self, cars_engine):
        result = cars_engine.search(Query.scalar("Make", "Honda"), k=3)
        assert len(result) == 3
        assert all(item["Make"] == "Honda" for item in result)

    def test_items_materialised(self, cars_engine):
        result = cars_engine.search("Make = 'Toyota'", k=2)
        for item in result:
            assert set(item.values) == {
                "Make", "Model", "Color", "Year", "Description",
            }
            assert item.rid in range(11, 15)

    def test_scored_results_sorted_by_score(self, cars_engine):
        text = "Make = 'Toyota' [3] OR Year = 2007"
        result = cars_engine.search(text, k=8, scored=True)
        scores = [item.score for item in result]
        assert scores == sorted(scores, reverse=True)

    def test_stats_present(self, cars_engine):
        result = cars_engine.search("Make = 'Honda'", k=3, algorithm="probe")
        assert result.stats["next_calls"] <= 6 + 1
        multq = cars_engine.search("Make = 'Honda'", k=3, algorithm="multq")
        assert multq.stats["queries_issued"] > 0

    def test_unknown_algorithm(self, cars_engine):
        with pytest.raises(ValueError):
            cars_engine.search("", k=3, algorithm="quantum")

    def test_negative_k(self, cars_engine):
        with pytest.raises(ValueError):
            cars_engine.search("", k=-1)

    def test_k_zero(self, cars_engine):
        assert len(cars_engine.search("", k=0)) == 0

    def test_no_matches(self, cars_engine):
        result = cars_engine.search("Make = 'Tesla'", k=5)
        assert len(result) == 0

    def test_the_headline_example(self, cars_engine):
        """The abstract's promise: five results for Honda -> five different
        Honda models, not five Civics."""
        result = cars_engine.search("Make = 'Honda'", k=4)
        models = {item["Model"] for item in result}
        assert len(models) == 4

    def test_color_diversity_within_model(self, cars_engine):
        """Searching 2007 Honda Civics: different colors, per the intro."""
        result = cars_engine.search("Make = 'Honda' AND Model = 'Civic' AND Year = 2007", k=3)
        colors = {item["Color"] for item in result}
        assert len(colors) == 3


class TestConstruction:
    def test_from_relation_with_name_list(self, cars):
        engine = DiversityEngine.from_relation(cars, ["Make", "Model"])
        assert engine.ordering.attributes == ("Make", "Model")

    def test_from_relation_with_bptree_backend(self, cars):
        engine = DiversityEngine.from_relation(
            cars, ["Make", "Model"], backend="bptree"
        )
        assert engine.index.backend == "bptree"
        assert len(engine.search("Make = 'Honda'", k=2)) == 2

    def test_compile(self, cars_engine):
        merged = cars_engine.compile("Make = 'Honda'")
        assert merged.first() is not None

    def test_explain(self, cars_engine):
        text = cars_engine.explain("Make = 'Honda'")
        assert "Make = 'Honda'" in text
        assert "Make < Model" in text


class TestResultRendering:
    def test_to_table(self, cars_engine):
        result = cars_engine.search("Make = 'Toyota'", k=2)
        table = result.to_table(["Make", "Model"])
        assert "Toyota" in table
        assert table.count("\n") >= 3

    def test_to_table_scored(self, cars_engine):
        result = cars_engine.search("Year = 2007", k=2, scored=True)
        assert "score" in result.to_table(["Make"])

    def test_to_table_empty(self, cars_engine):
        result = cars_engine.search("Make = 'Tesla'", k=2)
        assert result.to_table() == "(no results)"

    def test_rows_and_accessors(self, cars_engine):
        result = cars_engine.search("Make = 'Toyota'", k=2)
        assert len(result.rows()) == 2
        assert len(result.rids) == 2
        assert result[0].dewey in result.deweys
