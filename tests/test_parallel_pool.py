"""Pool-lifecycle suite: sizing, teardown, self-healing, fencing, refusals.

The bugfix sweep riding along with the process backend:

* the thread pool's width tracks the live config (the historical bug
  sized it once at first use and never resized);
* replica-set hedge pools derive their width from the owning engine's
  worker budget instead of a hardcoded ``min(4, R + 1)``;
* a failed fan-out never leaks futures, and ``close()`` after a failed
  ``execute()`` joins every worker — thread and process alike;
* a killed worker process costs one degraded answer, not the engine;
* unsupported mode combinations (process + chaos, process + replication,
  spawn without a durable store) raise loudly instead of silently
  serving wrong experiments.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import random
import signal
import threading
import time

import pytest

from repro import DiversityEngine
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.parallel import (
    ProcessShardPool,
    UnsupportedWorkerModeError,
    resolve_worker_mode,
)
from repro.replication.replica_set import ReplicaSet
from repro.resilience import ChaosPolicy, ResiliencePolicy
from repro.resilience.policy import Deadline
from repro.sharding import ShardedEngine, ShardedIndex

from .conftest import RANDOM_ORDERING, random_query, random_relation

HAS_FORK = "fork" in mp.get_all_start_methods()

needs_fork = pytest.mark.skipif(
    not HAS_FORK, reason="fork start method unavailable"
)


def _payload(result):
    return [
        (item.dewey, item.rid, tuple(sorted(item.values.items())), item.score)
        for item in result
    ]


# ----------------------------------------------------------------------
# Satellite 1: thread-pool width tracks the live configuration
# ----------------------------------------------------------------------
class TestThreadPoolWidth:
    def test_pool_width_is_min_of_workers_and_shards(self):
        with ShardedEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2, workers=8
        ) as engine:
            pool = engine._ensure_pool()
            assert pool._max_workers == 2
            assert engine._pool_width == 2

    def test_set_workers_rebuilds_the_pool_at_the_new_width(self):
        """Regression: the pool was sized once at first use and never
        resized, so a later ``set_workers`` silently kept the old width."""
        with ShardedEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=4, workers=2
        ) as engine:
            first = engine._ensure_pool()
            assert first._max_workers == 2
            engine.set_workers(4)
            second = engine._ensure_pool()
            assert second is not first
            assert second._max_workers == 4
            # And back down again.
            engine.set_workers(3)
            assert engine._ensure_pool()._max_workers == 3

    def test_unchanged_width_reuses_the_pool(self):
        with ShardedEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=4, workers=2
        ) as engine:
            assert engine._ensure_pool() is engine._ensure_pool()

    def test_set_workers_rejects_negative(self):
        with ShardedEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2, workers=2
        ) as engine:
            with pytest.raises(ValueError):
                engine.set_workers(-1)


# ----------------------------------------------------------------------
# Satellite 3: hedge-pool width derives from the engine's worker budget
# ----------------------------------------------------------------------
class TestHedgePoolWidth:
    def test_no_budget_keeps_the_legacy_width(self):
        assert ReplicaSet.derive_pool_width(1, 4, 0) == 2
        assert ReplicaSet.derive_pool_width(2, 4, 0) == 3
        assert ReplicaSet.derive_pool_width(3, 4, 0) == 4
        assert ReplicaSet.derive_pool_width(9, 4, 0) == 4  # legacy cap

    def test_budget_share_caps_at_replica_count_plus_hedge(self):
        # 16 workers over 2 shards: an 8-wide share, but 2 replicas only
        # ever race 3 legs.
        assert ReplicaSet.derive_pool_width(2, 2, 16) == 3

    def test_small_budget_floors_at_two_legs(self):
        # 1 worker over 4 shards: a hedge still needs a racer.
        assert ReplicaSet.derive_pool_width(3, 4, 1) == 2

    def test_budget_splits_across_shards(self):
        # 8 workers over 4 shards -> share 2 -> width 3 (capped by R+1=4).
        assert ReplicaSet.derive_pool_width(3, 4, 8) == 3

    def test_engine_budget_reaches_replica_sets(self):
        relation = random_relation(random.Random(11), max_rows=30)
        index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
        with ShardedEngine(index, workers=8) as engine:
            index.replicate(2)
            expected = ReplicaSet.derive_pool_width(2, 2, 8)
            for shard in index.shards:
                assert shard.pool_width == expected
            # Re-sizing the engine re-derives the hedge widths too.
            engine.set_workers(2)
            narrowed = ReplicaSet.derive_pool_width(2, 2, 2)
            for shard in index.shards:
                assert shard.pool_width == narrowed

    def test_standalone_set_keeps_legacy_width(self):
        relation = random_relation(random.Random(12), max_rows=20)
        index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
        index.replicate(2)
        for shard in index.shards:
            assert shard.pool_width == 3  # min(4, R + 1), no budget

    def test_set_pool_budget_rejects_zero(self):
        relation = random_relation(random.Random(13), max_rows=20)
        index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
        index.replicate(2)
        with pytest.raises(ValueError):
            index.shards[0].set_pool_budget(0)


# ----------------------------------------------------------------------
# Satellite 2: teardown on exception paths, thread and process
# ----------------------------------------------------------------------
class TestTeardownAfterFailure:
    def test_thread_close_after_failed_execute(self):
        rng = random.Random(21)
        relation = random_relation(rng, max_rows=30)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=2, workers=2,
            policy=ResiliencePolicy(max_retries=0),
        )
        engine.inject_chaos(ChaosPolicy.crash_shards(0, 1))
        with pytest.raises(Exception):
            engine.search(random_query(rng), 5, algorithm="probe")
        engine.close()  # joins the fan-out threads despite the failure
        assert engine._pool is None
        engine.close()  # and stays idempotent

    @needs_fork
    def test_process_close_after_killed_worker(self):
        rng = random.Random(22)
        relation = random_relation(rng, max_rows=30)
        engine = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=2, workers=2,
            worker_mode="fork",
        )
        engine.search(random_query(rng), 5, algorithm="naive")
        for pid in engine._process_pool.worker_pids():
            os.kill(pid, signal.SIGKILL)
        # The next query sees dead pipes; whatever it reports, close()
        # afterwards must still join everything.
        try:
            engine.search(random_query(rng), 5, algorithm="naive")
        except Exception:
            pass
        engine.close()
        engine.close()
        assert mp.active_children() == []

    @needs_fork
    def test_process_concurrent_close_race(self):
        engine = ShardedEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2, workers=2,
            worker_mode="fork",
        )
        engine.search("Make = 'Honda'", k=2, algorithm="naive")
        errors = []
        barrier = threading.Barrier(8)

        def race():
            barrier.wait()
            try:
                engine.close()
            except BaseException as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [threading.Thread(target=race) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert mp.active_children() == []


# ----------------------------------------------------------------------
# Self-healing: a killed worker costs one degraded answer, not the engine
# ----------------------------------------------------------------------
@needs_fork
def test_killed_worker_degrades_then_heals():
    rng = random.Random(31)
    relation = random_relation(rng, max_rows=40)
    reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    query = random_query(rng)
    with ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=4, workers=2, worker_mode="fork"
    ) as engine:
        expected = _payload(reference.search(query, 5, algorithm="naive"))
        assert _payload(engine.search(query, 5, algorithm="naive")) == expected
        victim = engine._process_pool.worker_pids()[0]
        os.kill(victim, signal.SIGKILL)
        time.sleep(0.05)
        degraded = engine.search(query, 5, algorithm="naive")
        # The victim's shards are lost for this answer; the engine reports
        # the degradation instead of hanging or crashing.
        assert degraded.stats["degraded"] is True
        assert degraded.stats["shards_failed"] >= 1
        assert engine._process_pool.broken
        # Next query rebuilds the pool: full bit-identical answers again.
        healed = engine.search(query, 5, algorithm="naive")
        assert _payload(healed) == expected
        assert not healed.stats["degraded"]
        assert not engine._process_pool.broken
    assert mp.active_children() == []


# ----------------------------------------------------------------------
# Epoch fencing at the pool level: stale answers are rejected, not merged
# ----------------------------------------------------------------------
@needs_fork
def test_pool_rejects_mismatched_epochs():
    rng = random.Random(41)
    relation = random_relation(rng, max_rows=30)
    index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
    query = random_query(rng)
    with ProcessShardPool(index, workers=2, mode="fork") as pool:
        fresh = pool.fanout(query, 5, "naive", False, index.shard_epochs())
        assert all(status == "ok" for status, _, _ in fresh.values())
        # Claim a future epoch: every worker must refuse to answer.
        drifted = [epoch + 1 for epoch in index.shard_epochs()]
        fenced = pool.fanout(query, 5, "naive", False, drifted)
        assert all(status == "stale" for status, _, _ in fenced.values())
        for status, value, _ in fenced.values():
            seen, expected = value
            assert expected == seen + 1
    assert mp.active_children() == []


@needs_fork
def test_pool_stale_detection_after_index_mutation():
    rng = random.Random(42)
    relation = random_relation(rng, max_rows=30)
    index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
    with ProcessShardPool(index, workers=2, mode="fork") as pool:
        assert not pool.stale()
        rid = relation.insert(("A", "m1", "red", "fun"))
        index.insert(rid)
        assert pool.stale()
        pool.rebuild("test")
        assert not pool.stale()
        assert pool.built_epochs == index.shard_epochs()
    assert mp.active_children() == []


@needs_fork
def test_deadline_expiry_reports_deadline_and_discards_late_replies():
    rng = random.Random(43)
    relation = random_relation(rng, max_rows=30)
    index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
    query = random_query(rng)
    with ProcessShardPool(index, workers=2, mode="fork") as pool:
        # Freeze the workers: no reply can arrive inside the deadline.
        for pid in pool.worker_pids():
            os.kill(pid, signal.SIGSTOP)
        try:
            dropped = pool.fanout(
                query, 5, "naive", False, index.shard_epochs(), Deadline(50.0)
            )
        finally:
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGCONT)
        assert all(
            status == "deadline" for status, _, _ in dropped.values()
        )
        # The abandoned replies drain on the next fan-out (request-id
        # matching): fresh answers come back clean.
        fresh = pool.fanout(query, 5, "naive", False, index.shard_epochs())
        assert all(status == "ok" for status, _, _ in fresh.values())
    assert mp.active_children() == []


# ----------------------------------------------------------------------
# Unsupported combinations fail loudly
# ----------------------------------------------------------------------
class TestUnsupportedCombinations:
    @needs_fork
    def test_chaos_plus_process_engine_raises(self):
        with ShardedEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2, workers=2,
            worker_mode="fork",
        ) as engine:
            with pytest.raises(UnsupportedWorkerModeError):
                engine.inject_chaos(ChaosPolicy.transient(0.5, seed=1))

    @needs_fork
    def test_replication_plus_process_pool_raises(self):
        relation = random_relation(random.Random(51), max_rows=20)
        index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
        index.replicate(2)
        with pytest.raises(UnsupportedWorkerModeError):
            ProcessShardPool(index, workers=2, mode="fork")

    @needs_fork
    def test_replication_plus_process_engine_raises_eagerly(self):
        relation = random_relation(random.Random(52), max_rows=20)
        index = ShardedIndex.build(relation, RANDOM_ORDERING, shards=2)
        index.replicate(2)
        with pytest.raises(UnsupportedWorkerModeError):
            ShardedEngine(index, workers=2, worker_mode="process")

    def test_spawn_without_durable_store_raises_at_first_fanout(self):
        rng = random.Random(53)
        relation = random_relation(rng, max_rows=20)
        with ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=2, workers=2,
            worker_mode="spawn",
        ) as engine:
            with pytest.raises(UnsupportedWorkerModeError,
                               match="durable store"):
                engine.search(random_query(rng), 5, algorithm="naive")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_worker_mode("gevent")

    def test_serving_replicas_plus_process_raises(self):
        from repro.serving import ServingEngine

        with pytest.raises(UnsupportedWorkerModeError):
            ServingEngine.from_relation(
                figure1_relation(), figure1_ordering(), shards=2,
                workers=2, worker_mode="process", replicas=2,
            )


# ----------------------------------------------------------------------
# Single-shard / zero-worker configs degrade to serial, not to errors
# ----------------------------------------------------------------------
def test_process_mode_with_one_shard_runs_serial():
    rng = random.Random(61)
    relation = random_relation(rng, max_rows=30)
    reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    query = random_query(rng)
    with ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=1, workers=4, worker_mode="process"
    ) as engine:
        assert _payload(engine.search(query, 5, algorithm="naive")) == \
            _payload(reference.search(query, 5, algorithm="naive"))
        assert engine._process_pool is None  # never built
    assert mp.active_children() == []
