"""Shared fixtures: the paper's Figure 1 database and small random helpers."""

from __future__ import annotations

import random

import pytest

from repro import DiversityEngine, Query, Relation, Schema
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.index.inverted import InvertedIndex


@pytest.fixture
def cars() -> Relation:
    """The Cars relation of Figure 1(a)."""
    return figure1_relation()


@pytest.fixture
def cars_index(cars) -> InvertedIndex:
    return InvertedIndex.build(cars, figure1_ordering())


@pytest.fixture
def cars_engine(cars) -> DiversityEngine:
    return DiversityEngine.from_relation(cars, figure1_ordering())


MAKES = ["A", "B", "C", "D"]
MODELS = ["m1", "m2", "m3"]
COLORS = ["red", "blue", "green"]
WORDS = ["low", "miles", "price", "rare", "fun", "clean"]


def random_relation(rng: random.Random, max_rows: int = 50) -> Relation:
    """A small random car-like relation for oracle comparisons."""
    schema = Schema.of(
        make="categorical", model="categorical", color="categorical", desc="text"
    )
    rows = [
        (
            rng.choice(MAKES),
            rng.choice(MODELS),
            rng.choice(COLORS),
            " ".join(rng.sample(WORDS, rng.randint(1, 3))),
        )
        for _ in range(rng.randint(1, max_rows))
    ]
    return Relation.from_rows(schema, rows)


def random_query(rng: random.Random, weighted: bool = False) -> Query:
    """A random query in the paper's query model."""
    kind = rng.randint(0, 3)
    weight = (lambda: float(rng.randint(1, 3))) if weighted else (lambda: 1.0)
    if kind == 0:
        return Query.match_all()
    if kind == 1:
        return Query.scalar("make", rng.choice(MAKES), weight=weight())
    if kind == 2:
        return Query.conjunction(
            Query.scalar("make", rng.choice(MAKES), weight=weight()),
            Query.keyword("desc", rng.choice(WORDS), weight=weight()),
        )
    return Query.disjunction(
        Query.scalar("model", rng.choice(MODELS), weight=weight()),
        Query.keyword("desc", rng.choice(WORDS), weight=weight()),
        Query.scalar("color", rng.choice(COLORS), weight=weight()),
    )


RANDOM_ORDERING = ["make", "model", "color", "desc"]
