"""The HTTP front-end: protocol, quotas, admission, and the wire contract.

Four layers, tested bottom-up:

1. :mod:`repro.server.protocol` — parser limits and framing, in isolation
   over in-memory streams.
2. :mod:`repro.server.quotas` — token-bucket arithmetic on a fake clock.
3. :mod:`repro.server.admission` — deadline-aware admission and
   cheapest-to-reject shedding, on a fake clock with no sockets at all.
4. The full server (``ServerThread`` + ``http.client``) — status codes,
   headers, pagination streaming, overload shedding, graceful drain, and
   the end-to-end degraded-response contract (a crashed shard behind the
   server yields ``200`` + ``X-Repro-Degraded``, the answer is verified
   diverse over the survivors, and the degraded answer is never cached).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
import time
import urllib.parse

import pytest

from repro.core import baselines
from repro.core.similarity import is_diverse
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.index.merged import MergedList
from repro.observability import FakeClock, MetricsRegistry, use_registry
from repro.query.parser import parse_query
from repro.resilience import ChaosPolicy
from repro.serving import ServingEngine
from repro.server import (
    AdmissionController,
    Rejection,
    ServerConfig,
    ServerThread,
    TenantQuotas,
)
from repro.server.admission import (
    REASON_DEADLINE,
    REASON_OVERLOAD,
    REASON_SHED,
)
from repro.server.protocol import (
    ProtocolError,
    read_request,
    render_response,
)

QUERY = urllib.parse.quote("Make = 'Honda'")


# ======================================================================
# Layer 1: protocol
# ======================================================================
def _parse(raw: bytes):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestProtocol:
    def test_parses_target_params_and_headers(self):
        request = _parse(
            b"GET /search?q=abc&k=3 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"X-Repro-Tenant: alice\r\n"
            b"\r\n"
        )
        assert request.method == "GET"
        assert request.path == "/search"
        assert request.param("q") == "abc"
        assert request.param("k") == "3"
        assert request.header("x-repro-tenant") == "alice"
        assert request.header("X-Repro-Tenant") == "alice"  # case-blind
        assert request.keep_alive  # 1.1 default

    def test_connection_close_and_http10(self):
        assert not _parse(
            b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive
        assert not _parse(b"GET / HTTP/1.0\r\n\r\n").keep_alive
        assert _parse(
            b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").keep_alive

    def test_clean_eof_returns_none(self):
        assert _parse(b"") is None

    def test_body_via_content_length(self):
        request = _parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
        assert request.body == b"hello"

    @pytest.mark.parametrize(
        "raw, status",
        [
            (b"GARBAGE\r\n\r\n", 400),                      # no method/target
            (b"GET / HTTP/9.9\r\n\r\n", 400),               # bad version
            (b"GET / HTTP/1.1\r\nbroken header\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nContent-Length: -5\r\n\r\n", 400),
            (b"GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501),
            (b"GET / HTTP/1.1\r\nContent-Length: 9999999999\r\n\r\n", 413),
        ],
    )
    def test_malformed_requests(self, raw, status):
        with pytest.raises(ProtocolError) as excinfo:
            _parse(raw)
        assert excinfo.value.status == status

    def test_header_count_limit(self):
        raw = b"GET / HTTP/1.1\r\n" + b"".join(
            b"H%d: v\r\n" % i for i in range(100)) + b"\r\n"
        with pytest.raises(ProtocolError) as excinfo:
            _parse(raw)
        assert excinfo.value.status == 431

    def test_render_response_framing(self):
        raw = render_response(200, b'{"ok":1}', keep_alive=False)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert body == b'{"ok":1}'
        assert b"HTTP/1.1 200 OK" in head
        assert b"Content-Length: 8" in head
        assert b"Connection: close" in head


# ======================================================================
# Layer 2: quotas
# ======================================================================
class TestQuotas:
    def test_disabled_by_default(self):
        quotas = TenantQuotas()
        assert not quotas.enabled
        assert quotas.check("anyone") == 0.0
        assert len(quotas) == 0  # no state kept when disabled

    def test_burst_then_reject_with_retry_hint(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=2.0, burst=3.0, clock=clock)
        assert [quotas.check("t") for _ in range(3)] == [0.0, 0.0, 0.0]
        retry_after = quotas.check("t")
        # Bucket is empty; at 2 tokens/s one token is 500 ms away.
        assert retry_after == pytest.approx(500.0)
        assert quotas.rejected == 1
        clock.advance(0.5)
        assert quotas.check("t") == 0.0  # refilled exactly one token

    def test_tenants_are_isolated(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=1.0, burst=1.0, clock=clock)
        assert quotas.check("a") == 0.0
        assert quotas.check("a") > 0.0
        assert quotas.check("b") == 0.0  # b has its own bucket

    def test_anonymous_callers_share_one_bucket(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=1.0, burst=1.0, clock=clock)
        assert quotas.check(None) == 0.0
        assert quotas.check("") > 0.0  # falsy tenant = same anonymous bucket

    def test_lru_eviction_bounds_memory(self):
        clock = FakeClock()
        quotas = TenantQuotas(rate_per_s=1.0, burst=1.0, clock=clock,
                              max_tenants=2)
        quotas.check("a")
        quotas.check("b")
        quotas.check("c")  # evicts a
        assert len(quotas) == 2
        assert "a" not in quotas.snapshot()
        # Evicted tenant restarts from a full bucket (permissive, never worse).
        assert quotas.check("a") == 0.0


# ======================================================================
# Layer 3: admission control
# ======================================================================
def run_async(coroutine):
    return asyncio.run(coroutine)


class TestAdmission:
    def test_rejects_unmeetable_deadline_on_arrival(self):
        async def scenario():
            clock = FakeClock()
            admission = AdmissionController(
                initial_ms_per_unit=1.0, clock=clock)
            # cost 100 units at 1 ms/unit = 100 ms of service: a 50 ms
            # deadline can never be met, even with an empty queue.
            with pytest.raises(Rejection) as excinfo:
                admission.submit(100.0, 50.0, lambda: None)
            assert excinfo.value.status == 429
            assert excinfo.value.reason == REASON_DEADLINE
            assert excinfo.value.retry_after_ms == pytest.approx(50.0)
            assert admission.rejected == 1
            # The same request with a workable deadline is admitted.
            ticket = admission.submit(100.0, 200.0, lambda: None)
            assert ticket.state == "queued"
            assert admission.admitted == 1

        run_async(scenario())

    def test_projected_wait_counts_queued_and_inflight(self):
        async def scenario():
            clock = FakeClock()
            admission = AdmissionController(
                initial_ms_per_unit=1.0, workers=1, clock=clock)
            admission.submit(100.0, None, lambda: None)
            await admission.next_ticket()           # 100 units in flight
            admission.submit(50.0, None, lambda: None)  # 50 queued
            assert admission.projected_wait_ms() == pytest.approx(150.0)
            # A deadline inside the projected wait is rejected on arrival.
            with pytest.raises(Rejection):
                admission.submit(1.0, 100.0, lambda: None)

        run_async(scenario())

    def test_queue_full_sheds_costliest(self):
        async def scenario():
            clock = FakeClock()
            admission = AdmissionController(
                queue_depth=2, initial_ms_per_unit=0.001, clock=clock)
            cheap = admission.submit(1.0, None, lambda: None)
            pricey = admission.submit(100.0, None, lambda: None)
            newcomer = admission.submit(5.0, None, lambda: None)
            # The most expensive queued request was shed, not the newcomer.
            assert pricey.state == "shed"
            assert cheap.state == "queued"
            assert newcomer.state == "queued"
            with pytest.raises(Rejection) as excinfo:
                await pricey.future
            assert excinfo.value.status == 503
            assert excinfo.value.reason == REASON_SHED
            assert admission.shed == 1

        run_async(scenario())

    def test_queue_full_rejects_newcomer_when_it_is_costliest(self):
        async def scenario():
            clock = FakeClock()
            admission = AdmissionController(
                queue_depth=1, initial_ms_per_unit=0.001, clock=clock)
            queued = admission.submit(1.0, None, lambda: None)
            with pytest.raises(Rejection) as excinfo:
                admission.submit(100.0, None, lambda: None)
            assert excinfo.value.reason == REASON_OVERLOAD
            assert queued.state == "queued"  # incumbent survives

        run_async(scenario())

    def test_expired_deadline_victim_shed_first(self):
        async def scenario():
            clock = FakeClock()
            admission = AdmissionController(
                queue_depth=2, initial_ms_per_unit=0.001, clock=clock)
            expired = admission.submit(999.0, 10.0, lambda: None)
            fresh = admission.submit(1.0, None, lambda: None)
            clock.advance(0.05)  # 50 ms: the first ticket's deadline passed
            admission.submit(1.0, None, lambda: None)
            assert expired.state == "shed"  # free rejection, costliest spared
            assert fresh.state == "queued"

        run_async(scenario())

    def test_running_tickets_are_never_shed(self):
        async def scenario():
            clock = FakeClock()
            admission = AdmissionController(
                queue_depth=1, initial_ms_per_unit=0.001, clock=clock)
            running = admission.submit(1000.0, None, lambda: None)
            await admission.next_ticket()
            assert running.state == "running"
            admission.submit(1.0, None, lambda: None)
            with pytest.raises(Rejection):
                # Queue holds one cheap ticket; this costlier newcomer is
                # rejected rather than ever touching the running ticket.
                admission.submit(500.0, None, lambda: None)
            assert running.state == "running"

        run_async(scenario())

    def test_ewma_learns_service_rate(self):
        async def scenario():
            clock = FakeClock()
            admission = AdmissionController(
                initial_ms_per_unit=1.0, rate_alpha=0.5, clock=clock)
            admission.submit(10.0, None, lambda: None)
            ticket = await admission.next_ticket()
            admission.finish(ticket, 30.0)  # 3 ms/unit observed
            assert admission.ms_per_unit == pytest.approx(2.0)  # 0.5*3 + 0.5*1
            admission.submit(10.0, None, lambda: None)
            ticket = await admission.next_ticket()
            admission.finish(ticket, -1.0)  # refused ticket: no sample
            assert admission.ms_per_unit == pytest.approx(2.0)

        run_async(scenario())

    def test_drain_refuses_and_wait_idle_resolves(self):
        async def scenario():
            clock = FakeClock()
            admission = AdmissionController(clock=clock)
            admission.submit(1.0, None, lambda: None)
            admission.start_draining()
            with pytest.raises(Rejection) as excinfo:
                admission.submit(1.0, None, lambda: None)
            assert excinfo.value.status == 503
            # The admitted ticket still runs to completion.
            ticket = await admission.next_ticket()
            admission.finish(ticket, 1.0)
            await asyncio.wait_for(admission.wait_idle(), timeout=1.0)

        run_async(scenario())


# ======================================================================
# Layer 4: the full server
# ======================================================================
def _request(address, target, headers=None, timeout=30.0):
    """One GET against the test server; returns (status, headers, body)."""
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", target, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    with use_registry(fresh):
        yield fresh


@pytest.fixture
def figure1_server(registry):
    serving = ServingEngine.from_relation(
        figure1_relation(), figure1_ordering())
    with ServerThread(serving, ServerConfig(), registry=registry) as thread:
        yield thread
    serving.close()


class TestServerEndToEnd:
    def test_search_roundtrip_with_cache_headers(self, figure1_server):
        address = figure1_server.address
        status, headers, body = _request(address, f"/search?q={QUERY}&k=2")
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"
        assert "X-Repro-Degraded" not in headers
        document = json.loads(body)
        assert document["count"] == 2
        assert len(document["items"]) == 2
        assert {"rid", "dewey", "values", "score"} <= set(document["items"][0])
        # The identical query is a result-cache hit with identical items.
        status, headers, repeat = _request(address, f"/search?q={QUERY}&k=2")
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"
        assert json.loads(repeat)["items"] == document["items"]

    def test_healthz_and_index(self, figure1_server):
        status, _, body = _request(figure1_server.address, "/healthz")
        assert status == 200
        assert json.loads(body)["status"] == "ok"
        status, _, body = _request(figure1_server.address, "/")
        assert status == 200
        assert "/search" in json.loads(body)["endpoints"]

    def test_error_statuses(self, figure1_server):
        address = figure1_server.address
        cases = {
            "/nope": 404,
            "/search": 400,                              # missing q
            f"/search?q={QUERY}&k=0": 400,
            f"/search?q={QUERY}&algorithm=wat": 400,
            "/search?q=%3D%3D%3D": 400,                  # parse error
            f"/search?q={QUERY}&page=1&pages=2": 400,    # mutually exclusive
            f"/search?q={QUERY}&scored=1&page=1": 400,   # scored pagination
        }
        for target, expected in cases.items():
            status, _, body = _request(address, target)
            assert status == expected, target
            assert json.loads(body)["status"] == expected

    def test_single_page_and_stream_do_not_overlap(self, figure1_server):
        address = figure1_server.address
        pages = []
        for number in (1, 2, 3):
            status, _, body = _request(
                address,
                f"/search?q={QUERY}&page={number}&page_size=1")
            assert status == 200
            pages.append(json.loads(body))
        rids = [item["rid"] for page in pages for item in page["items"]]
        assert len(rids) == len(set(rids))  # pages never repeat a row
        # The streaming path yields the same pages, one NDJSON line each.
        status, headers, body = _request(
            address, f"/search?q={QUERY}&pages=3&page_size=1")
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        lines = [json.loads(line) for line in body.splitlines() if line]
        assert [p["items"] for p in lines] == [p["items"] for p in pages]

    def test_quota_rejects_with_retry_after(self, registry):
        serving = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering())
        config = ServerConfig(quota_rate_per_s=0.001, quota_burst=2.0)
        with ServerThread(serving, config, registry=registry) as thread:
            address = thread.address
            headers = {"X-Repro-Tenant": "greedy"}
            for _ in range(2):
                status, _, _ = _request(
                    address, f"/search?q={QUERY}", headers=headers)
                assert status == 200
            status, answer_headers, body = _request(
                address, f"/search?q={QUERY}", headers=headers)
            assert status == 429
            assert json.loads(body)["error"] == "quota_exceeded"
            assert int(answer_headers["Retry-After"]) >= 1
            # Another tenant is unaffected.
            status, _, _ = _request(
                address, f"/search?q={QUERY}",
                headers={"X-Repro-Tenant": "patient"})
            assert status == 200
        serving.close()

    def test_unmeetable_deadline_rejected_on_arrival(self, registry):
        serving = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering())
        # 1000 ms/unit makes any query's estimated service dwarf a 1 ms
        # deadline, so admission must refuse before execution.
        config = ServerConfig(initial_ms_per_unit=1000.0)
        with ServerThread(serving, config, registry=registry) as thread:
            status, headers, body = _request(
                thread.address, f"/search?q={QUERY}&deadline_ms=1")
            assert status == 429
            assert json.loads(body)["error"] == REASON_DEADLINE
            assert "Retry-After" in headers
            # deadline_ms=0 means unbounded: the same query succeeds.
            status, _, _ = _request(
                thread.address, f"/search?q={QUERY}&deadline_ms=0")
            assert status == 200
        serving.close()

    def test_deadline_header_equivalent_to_param(self, registry):
        serving = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering())
        config = ServerConfig(initial_ms_per_unit=1000.0)
        with ServerThread(serving, config, registry=registry) as thread:
            status, _, _ = _request(
                thread.address, f"/search?q={QUERY}",
                headers={"X-Repro-Deadline-Ms": "1"})
            assert status == 429
        serving.close()

    def test_overload_sheds_instead_of_collapsing(self, registry):
        serving = _SlowServing(figure1_relation(), delay_s=0.15)
        config = ServerConfig(queue_depth=1, workers=1,
                              default_deadline_ms=0.0)
        with ServerThread(serving, config, registry=registry) as thread:
            address = thread.address
            outcomes = []
            lock = threading.Lock()

            def fire():
                status, _, body = _request(
                    address, f"/search?q={QUERY}&deadline_ms=0")
                with lock:
                    outcomes.append((status, body))

            threads = [threading.Thread(target=fire) for _ in range(6)]
            for worker in threads:
                worker.start()
                time.sleep(0.01)  # arrivals overlap but are ordered
            for worker in threads:
                worker.join(timeout=30.0)
            statuses = sorted(status for status, _ in outcomes)
            assert len(statuses) == 6
            assert statuses.count(200) >= 2  # running + queued finish
            assert any(status == 503 for status in statuses)  # overload shed
            admission = thread.server.admission
            assert admission.shed + admission.rejected >= 1
            assert admission.completed >= 2
        serving.close()

    def test_graceful_drain_finishes_inflight_work(self, registry):
        serving = _SlowServing(figure1_relation(), delay_s=0.3)
        with ServerThread(serving, ServerConfig(), registry=registry) as thread:
            address = thread.address
            outcome = {}

            def slow_call():
                outcome["answer"] = _request(
                    address, f"/search?q={QUERY}&deadline_ms=0")

            caller = threading.Thread(target=slow_call)
            caller.start()
            time.sleep(0.1)  # request is admitted and executing
            thread.stop()    # full drain on the server's own loop
            caller.join(timeout=30.0)
            status, _, _ = outcome["answer"]
            assert status == 200  # in-flight answer completed, not cut off
        serving.close()

    def test_metrics_endpoints_both_formats(self, figure1_server):
        address = figure1_server.address
        _request(address, f"/search?q={QUERY}")
        status, headers, body = _request(address, "/metrics")
        assert status == 200
        assert "text/plain" in headers["Content-Type"]
        assert b"repro_http_requests_total" in body
        assert b"repro_http_queue_depth" in body
        status, _, body = _request(address, "/metrics?format=json")
        assert status == 200
        snapshot = json.loads(body)
        names = {counter["name"] for counter in snapshot["counters"]}
        assert "repro_http_requests_total" in names
        assert "repro_http_admitted_total" in names
        histograms = {h["name"] for h in snapshot["histograms"]}
        assert "repro_http_request_ms" in histograms


class _SlowServing(ServingEngine):
    """A serving engine whose every search takes ``delay_s`` (overload rig)."""

    def __init__(self, relation, delay_s: float):
        from repro import DiversityEngine

        super().__init__(
            DiversityEngine.from_relation(relation, figure1_ordering()))
        self._delay_s = delay_s

    def search(self, query, k, algorithm="probe", scored=False, optimize=True):
        time.sleep(self._delay_s)
        return super().search(query, k, algorithm=algorithm, scored=scored,
                              optimize=optimize)


# ======================================================================
# The degraded-response contract, end to end (satellite 3)
# ======================================================================
class TestDegradedContract:
    def test_crashed_shard_yields_flagged_uncached_diverse_answer(
            self, registry):
        serving = ServingEngine.from_relation(
            figure1_relation(), figure1_ordering(), shards=2)
        engine = serving.engine
        engine.inject_chaos(ChaosPolicy.crash_shards(0))
        k = 3
        query = parse_query("Make = 'Honda'")
        with ServerThread(serving, ServerConfig(), registry=registry) as thread:
            address = thread.address
            target = f"/search?q={QUERY}&k={k}&algorithm=naive&deadline_ms=0"
            status, headers, body = _request(address, target)
            # Survivor-only answer: 200, flagged, correct shard arithmetic.
            assert status == 200
            assert headers["X-Repro-Degraded"] == "shards=1/2"
            document = json.loads(body)
            assert document["degraded"] is True
            # The answer satisfies Definitions 1-2 over the reachable rows.
            survivors = []
            for shard_id, shard in enumerate(engine.sharded_index.shards):
                if shard_id == 0:
                    continue
                merged = MergedList(query, getattr(shard, "inner", shard))
                survivors.extend(baselines.collect_all(merged))
            deweys = [tuple(item["dewey"]) for item in document["items"]]
            assert is_diverse(deweys, survivors, k)
            # Shard recovered: the follow-up answer must be computed fresh
            # (a cached degraded answer would keep serving the outage).
            engine.clear_chaos()
            status, headers, body = _request(address, target)
            assert status == 200
            assert "X-Repro-Degraded" not in headers
            assert headers["X-Repro-Cache"] == "miss"
            healthy = json.loads(body)
            assert healthy["degraded"] is False
            # The healthy (full-coverage) answer now does get cached.
            status, headers, _ = _request(address, target)
            assert headers["X-Repro-Cache"] == "hit"
        serving.close()
