"""Tests for predicates, query trees, the parser and naive evaluation."""

import pytest

from repro.query.evaluate import res, scored_res, selectivity
from repro.query.parser import QueryParseError, parse_query
from repro.query.predicates import KeywordPredicate, ScalarPredicate
from repro.query.query import AND, LEAF, OR, Query


class TestPredicates:
    def test_scalar_match(self):
        predicate = ScalarPredicate("Make", "Honda")
        assert predicate.matches({"Make": "Honda"})
        assert not predicate.matches({"Make": "Toyota"})
        assert predicate.describe() == "Make = 'Honda'"

    def test_scalar_numeric(self):
        predicate = ScalarPredicate("Year", 2007)
        assert predicate.matches({"Year": 2007})
        assert not predicate.matches({"Year": 2006})

    def test_keyword_match(self):
        predicate = KeywordPredicate("Description", "Low miles")
        assert predicate.matches({"Description": "low MILES, one owner"})
        assert not predicate.matches({"Description": "low price"})

    def test_keyword_terms_normalised(self):
        predicate = KeywordPredicate("d", "Low LOW miles")
        assert predicate.terms == ("low", "miles")

    def test_keyword_requires_tokens(self):
        with pytest.raises(ValueError):
            KeywordPredicate("d", "!!!")


class TestQueryTree:
    def test_leaf_builders(self):
        query = Query.scalar("Make", "Honda", weight=2.0)
        assert query.kind == LEAF
        assert query.weight == 2.0

    def test_conjunction_flattens(self):
        q = Query.conjunction(
            Query.scalar("a", 1), Query.conjunction(Query.scalar("b", 2), Query.scalar("c", 3))
        )
        assert q.kind == AND
        assert len(q.children) == 3

    def test_disjunction_flattens(self):
        q = Query.scalar("a", 1) | (Query.scalar("b", 2) | Query.scalar("c", 3))
        assert q.kind == OR
        assert len(q.children) == 3

    def test_and_or_operators(self):
        q = Query.scalar("a", 1) & Query.scalar("b", 2)
        assert q.kind == AND

    def test_matches_and(self):
        q = Query.scalar("Make", "Honda") & Query.scalar("Year", 2007)
        assert q.matches({"Make": "Honda", "Year": 2007})
        assert not q.matches({"Make": "Honda", "Year": 2006})

    def test_matches_or(self):
        q = Query.scalar("Make", "Honda") | Query.scalar("Year", 2007)
        assert q.matches({"Make": "Toyota", "Year": 2007})
        assert not q.matches({"Make": "Toyota", "Year": 2006})

    def test_score_sums_satisfied_leaf_weights(self):
        q = Query.disjunction(
            Query.scalar("Make", "Honda", weight=2.0),
            Query.keyword("Description", "miles", weight=3.0),
        )
        assert q.score({"Make": "Honda", "Description": "low miles"}) == 5.0
        assert q.score({"Make": "Toyota", "Description": "low miles"}) == 3.0

    def test_score_counts_partial_and_leaves(self):
        """Per the paper, score is over satisfied predicates, independent of
        the boolean structure that defines membership."""
        q = Query.scalar("a", 1, weight=1.0) & Query.scalar("b", 2, weight=1.0)
        assert q.score({"a": 1, "b": 99}) == 1.0

    def test_match_all(self):
        q = Query.match_all()
        assert q.matches({"anything": 1})
        assert q.is_match_all()

    def test_max_score(self):
        q = Query.scalar("a", 1, weight=2.0) | Query.scalar("b", 2, weight=3.5)
        assert q.max_score() == 5.5

    def test_attributes(self):
        q = Query.scalar("a", 1) & Query.keyword("d", "x")
        assert q.attributes() == {"a", "d"}

    def test_validation(self):
        with pytest.raises(ValueError):
            Query(LEAF)
        with pytest.raises(ValueError):
            Query(AND, children=())
        with pytest.raises(ValueError):
            Query("xor", children=(Query.scalar("a", 1),))
        with pytest.raises(ValueError):
            Query.scalar("a", 1, weight=-1)

    def test_equality_hash(self):
        a = Query.scalar("x", 1) & Query.scalar("y", 2)
        b = Query.scalar("x", 1) & Query.scalar("y", 2)
        assert a == b and hash(a) == hash(b)
        assert a != (Query.scalar("x", 1) | Query.scalar("y", 2))

    def test_describe(self):
        q = Query.scalar("Make", "Honda") & Query.keyword("D", "low", weight=2)
        text = q.describe()
        assert "Make = 'Honda'" in text and "AND" in text and "[w=2]" in text


class TestParser:
    def test_scalar(self):
        q = parse_query("Make = 'Honda'")
        assert q == Query.scalar("Make", "Honda")

    def test_numeric_literal(self):
        q = parse_query("Year = 2007")
        assert q.predicate.value == 2007

    def test_float_literal(self):
        q = parse_query("Price = 3.5")
        assert q.predicate.value == 3.5

    def test_contains(self):
        q = parse_query("Description CONTAINS 'Low miles'")
        assert isinstance(q.predicate, KeywordPredicate)
        assert q.predicate.terms == ("low", "miles")

    def test_case_insensitive_keywords(self):
        q = parse_query("Make = 'Honda' and Description contains 'low'")
        assert q.kind == AND

    def test_precedence_and_binds_tighter(self):
        q = parse_query("a = 1 OR b = 2 AND c = 3")
        assert q.kind == OR
        assert q.children[1].kind == AND

    def test_parentheses(self):
        q = parse_query("(a = 1 OR b = 2) AND c = 3")
        assert q.kind == AND
        assert q.children[0].kind == OR

    def test_weights(self):
        q = parse_query("Make = 'Honda' [2] OR Description CONTAINS 'rare' [3.5]")
        assert [child.weight for child in q.children] == [2.0, 3.5]

    def test_double_quotes_and_escapes(self):
        q = parse_query('Make = "O\\"Brien"')
        assert q.predicate.value == 'O"Brien'

    def test_bareword_literal(self):
        q = parse_query("Make = Honda")
        assert q.predicate.value == "Honda"

    def test_match_all_forms(self):
        assert parse_query("").is_match_all()
        assert parse_query("*").is_match_all()

    @pytest.mark.parametrize(
        "bad",
        [
            "Make =",
            "Make",
            "= 'Honda'",
            "(a = 1",
            "a = 1 AND",
            "a = 1 b = 2",
            "a CONTAINS",
            "a = 1 [x]",
        ],
    )
    def test_errors(self, bad):
        with pytest.raises(QueryParseError):
            parse_query(bad)

    def test_roundtrip_through_describe_like_forms(self):
        q = parse_query("Make = 'Honda' AND (Year = 2007 OR Color = 'Red')")
        assert q.kind == AND
        assert q.children[1].kind == OR


class TestEvaluate:
    def test_res_on_figure1(self, cars):
        assert res(cars, parse_query("Make = 'Honda'")) == list(range(11))
        assert res(cars, parse_query("Make = 'Toyota'")) == [11, 12, 13, 14]
        assert res(cars, parse_query("Year = 2007")) == [
            0, 1, 2, 3, 5, 7, 9, 11, 12, 13, 14,
        ]

    def test_res_conjunction(self, cars):
        q = parse_query("Year = 2007 AND Description CONTAINS 'miles'")
        assert res(cars, q) == [0, 1, 2, 3, 11, 12, 13, 14]

    def test_res_disjunction(self, cars):
        q = parse_query("Make = 'Toyota' OR Description CONTAINS 'rare'")
        assert res(cars, q) == [7, 11, 12, 13, 14]

    def test_scored_res(self, cars):
        q = parse_query("Make = 'Toyota' [2] OR Description CONTAINS 'miles' [1]")
        scored = dict(scored_res(cars, q))
        assert scored[11] == 3.0  # Toyota with 'miles'
        assert scored[6] == 1.0   # Honda Accord 'Good miles'

    def test_selectivity(self, cars):
        assert selectivity(cars, parse_query("Make = 'Toyota'")) == pytest.approx(
            4 / 15
        )
        assert selectivity(cars, Query.match_all()) == 1.0
