"""Differential proof of the sharding layer (PR tentpole).

The contract under test: a :class:`repro.sharding.ShardedEngine` over any
shard count answers every query *bit-identically* to an unsharded
:class:`repro.core.engine.DiversityEngine` over the same rows — same Dewey
IDs, same rids, same materialised values, same scores, same order — for all
five algorithms, scored and unscored, under both routers, and across
interleaved insert/delete mutations.

Stats are deliberately *not* compared: the scatter-gather paths report
aggregate per-shard probe counts, which legitimately differ from a single
index scan.  (The coordinator-driven paths do match probe-for-probe, but
that is an implementation detail, not the contract.)
"""

from __future__ import annotations

import random

import pytest

from repro import DiversityEngine, Relation
from repro.core.engine import ALGORITHMS
from repro.sharding import (
    GATHER_ALGORITHMS,
    HashRouter,
    RangeRouter,
    ROUTERS,
    ShardedEngine,
    ShardedIndex,
    UnionPostingView,
    make_router,
)

from .conftest import COLORS, MAKES, MODELS, RANDOM_ORDERING, WORDS, random_query, random_relation

SHARD_COUNTS = [1, 2, 3, 8]
K_VALUES = [1, 3, 7]


def _payload(result):
    """Everything the caller observes, minus stats (see module docstring)."""
    return [
        (item.dewey, item.rid, tuple(sorted(item.values.items())), item.score)
        for item in result
    ]


def _clone(relation: Relation) -> Relation:
    """An independent copy: mutations to one must not leak into the other."""
    rows = [row for _, row in relation.iter_live()]
    return Relation.from_rows(relation.schema, rows, name=relation.name)


def _assert_identical(reference: DiversityEngine, sharded: ShardedEngine, query, k):
    for algorithm in ALGORITHMS:
        for scored in (False, True):
            expected = reference.search(query, k, algorithm=algorithm, scored=scored)
            actual = sharded.search(query, k, algorithm=algorithm, scored=scored)
            assert _payload(actual) == _payload(expected), (
                f"shards={sharded.num_shards} algorithm={algorithm} "
                f"scored={scored} k={k} query={query!r}"
            )


# ----------------------------------------------------------------------
# Static differential: random relations, random queries, every combination
# ----------------------------------------------------------------------
@pytest.mark.parametrize("router", ROUTERS)
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_answers_match_unsharded(shards, router):
    rng = random.Random(1000 * shards + len(router))
    for trial in range(4):
        relation = random_relation(rng, max_rows=60)
        reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
        sharded = ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=shards, router=router
        )
        assert sharded.num_shards == shards
        for _ in range(6):
            query = random_query(rng, weighted=rng.random() < 0.5)
            k = rng.choice(K_VALUES)
            _assert_identical(reference, sharded, query, k)


def test_sharded_matches_on_figure1(cars):
    """The paper's own example, every algorithm, a spread of k."""
    from repro.data.paper_example import figure1_ordering

    reference = DiversityEngine.from_relation(cars, figure1_ordering())
    for shards in SHARD_COUNTS:
        sharded = ShardedEngine.from_relation(
            _clone(cars), figure1_ordering(), shards=shards
        )
        for k in (1, 5, 10, 20):
            _assert_identical(reference, sharded, "Make = 'Honda'", k)
            _assert_identical(
                reference,
                sharded,
                "Make = 'Honda' [2] OR Description CONTAINS 'low'",
                k,
            )


# ----------------------------------------------------------------------
# Interleaved mutations: inserts and deletes routed mid-workload
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_answers_match_after_interleaved_mutations(shards):
    rng = random.Random(77 + shards)
    base = random_relation(rng, max_rows=40)
    reference = DiversityEngine.from_relation(base, RANDOM_ORDERING)
    sharded = ShardedEngine.from_relation(
        _clone(base), RANDOM_ORDERING, shards=shards, workers=4
    )
    live = list(range(len(base)))
    for _ in range(30):
        op = rng.random()
        if op < 0.35:
            row = (
                rng.choice(MAKES),
                rng.choice(MODELS),
                rng.choice(COLORS),
                " ".join(rng.sample(WORDS, rng.randint(1, 3))),
            )
            rid_a = reference.insert(row)
            rid_b = sharded.insert(row)
            assert rid_a == rid_b  # identical arrival order => identical rids
            live.append(rid_a)
        elif op < 0.55 and live:
            rid = live.pop(rng.randrange(len(live)))
            assert reference.delete(rid)
            assert sharded.delete(rid)
        else:
            query = random_query(rng, weighted=rng.random() < 0.5)
            _assert_identical(reference, sharded, query, rng.choice(K_VALUES))
    # One final full sweep after all mutations settled.
    _assert_identical(reference, sharded, random_query(rng), 5)


def test_mutations_bump_exactly_one_shard_epoch():
    rng = random.Random(5)
    relation = random_relation(rng, max_rows=30)
    sharded = ShardedEngine.from_relation(relation, RANDOM_ORDERING, shards=4)
    for _ in range(10):
        before = sharded.shard_epochs()
        rid = sharded.insert(
            (rng.choice(MAKES), rng.choice(MODELS), rng.choice(COLORS), "fun")
        )
        after = sharded.shard_epochs()
        bumped = [i for i in range(4) if after[i] != before[i]]
        assert bumped == [sharded.sharded_index.shard_of(rid)]
        assert sharded.epoch == sum(after)


# ----------------------------------------------------------------------
# The scatter-gather thread pool must not change any answer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_worker_pool_answers_equal_sequential(algorithm):
    rng = random.Random(11)
    relation = random_relation(rng, max_rows=60)
    sequential = ShardedEngine.from_relation(relation, RANDOM_ORDERING, shards=3)
    pooled = ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=3, workers=4
    )
    assert pooled.workers == 4
    for _ in range(8):
        query = random_query(rng)
        k = rng.choice(K_VALUES)
        for scored in (False, True):
            a = sequential.search(query, k, algorithm=algorithm, scored=scored)
            b = pooled.search(query, k, algorithm=algorithm, scored=scored)
            assert _payload(a) == _payload(b)
            assert a.stats == b.stats  # same fan-out, same probe totals


def test_gather_stats_report_fanout():
    rng = random.Random(13)
    relation = random_relation(rng, max_rows=50)
    sharded = ShardedEngine.from_relation(relation, RANDOM_ORDERING, shards=3)
    for algorithm in GATHER_ALGORITHMS:
        result = sharded.search(random_query(rng), 5, algorithm=algorithm)
        assert result.stats["shards_queried"] == 3
        assert result.stats["merge_candidates"] >= len(result)


# ----------------------------------------------------------------------
# Routers
# ----------------------------------------------------------------------
def test_hash_router_is_stable_and_in_range():
    router = HashRouter(5)
    values = ["Honda", "Toyota", 3, 3.5, True, ""]
    placements = [router.shard_of(value) for value in values]
    assert placements == [router.shard_of(value) for value in values]
    assert all(0 <= shard < 5 for shard in placements)
    # The typed hash must not conflate equal-repr values of different types.
    assert router.shard_of("3") is not None  # routes, regardless of int 3


def test_range_router_partitions_sorted_values_contiguously():
    router = RangeRouter.from_values(["A", "B", "C", "D", "E", "F"], 3)
    shards = [router.shard_of(value) for value in ["A", "B", "C", "D", "E", "F"]]
    assert shards == sorted(shards)  # sort-adjacent values stay adjacent
    assert set(shards) == {0, 1, 2}
    # Unseen values still route in range.
    assert 0 <= router.shard_of("ZZZ") < 3
    assert 0 <= router.shard_of(42) < 3


def test_range_router_validates_boundaries():
    with pytest.raises(ValueError, match="boundaries"):
        RangeRouter(3, boundaries=[(1, "B")])  # needs 2
    with pytest.raises(ValueError, match="sorted"):
        RangeRouter(3, boundaries=[(1, "Z"), (1, "A")])


def test_make_router_rejects_unknown_and_mismatched():
    with pytest.raises(ValueError, match="unknown router"):
        make_router("zorp", 2)
    with pytest.raises(ValueError, match="covers"):
        make_router(HashRouter(2), 3)
    assert make_router("hash", 4).shards == 4
    assert make_router("range", 2, ["A", "B"]).shards == 2


# ----------------------------------------------------------------------
# The union posting view and the sharded index protocol
# ----------------------------------------------------------------------
def test_union_posting_view_is_read_only_and_consistent():
    rng = random.Random(21)
    relation = random_relation(rng, max_rows=40)
    single = DiversityEngine.from_relation(relation, RANDOM_ORDERING).index
    sharded = ShardedIndex.build(relation, RANDOM_ORDERING, shards=3)
    view = sharded.all_postings()
    assert isinstance(view, UnionPostingView)
    reference = single.all_postings()
    assert list(view) == list(reference)
    assert len(view) == len(reference)
    assert view.first() == reference.first()
    assert view.last() == reference.last()
    for dewey in list(reference)[:10]:
        assert view.seek(dewey) == reference.seek(dewey)
        assert view.seek_floor(dewey) == reference.seek_floor(dewey)
    probe = reference.first()
    with pytest.raises(TypeError):
        view.insert(probe)
    with pytest.raises(TypeError):
        view.remove(probe)


def test_level1_postings_route_to_one_shard():
    """Top-attribute lookups skip the fan-out: co-location guarantees the
    whole posting list lives on the owning shard."""
    rng = random.Random(23)
    relation = random_relation(rng, max_rows=40)
    sharded = ShardedIndex.build(relation, RANDOM_ORDERING, shards=3)
    for make in MAKES:
        postings = sharded.scalar_postings("make", make)
        assert not isinstance(postings, UnionPostingView)
        owner = sharded.router.shard_of(make)
        assert list(postings) == list(
            sharded.shards[owner].scalar_postings("make", make)
        )


def test_sharded_index_partitions_every_row_once():
    rng = random.Random(29)
    relation = random_relation(rng, max_rows=50)
    sharded = ShardedIndex.build(relation, RANDOM_ORDERING, shards=4)
    assert len(sharded) == len(relation)
    assert sum(len(shard) for shard in sharded.shards) == len(relation)
    seen = set()
    for shard in sharded.shards:
        deweys = set(shard.all_postings())
        assert not (seen & deweys)  # disjoint
        seen |= deweys
    assert seen == set(sharded.dewey.all_deweys())


def test_sharded_vocabulary_matches_single_index():
    rng = random.Random(31)
    relation = random_relation(rng, max_rows=40)
    single = DiversityEngine.from_relation(relation, RANDOM_ORDERING).index
    sharded = ShardedIndex.build(relation, RANDOM_ORDERING, shards=3)
    for attribute in RANDOM_ORDERING:
        assert sorted(
            sharded.vocabulary(attribute), key=repr
        ) == sorted(single.vocabulary(attribute), key=repr)


def test_sharded_index_rejects_bad_shard_count():
    rng = random.Random(37)
    relation = random_relation(rng, max_rows=10)
    with pytest.raises(ValueError, match="positive"):
        ShardedIndex.build(relation, RANDOM_ORDERING, shards=0)
    with pytest.raises(ValueError, match="workers"):
        ShardedEngine.from_relation(relation, RANDOM_ORDERING, shards=2, workers=-1)


def test_single_shard_degenerates_to_plain_index():
    """shards=1 must behave exactly like the unsharded build — including
    serving direct (non-view) posting lists."""
    rng = random.Random(41)
    relation = random_relation(rng, max_rows=30)
    sharded = ShardedIndex.build(relation, RANDOM_ORDERING, shards=1)
    assert not isinstance(sharded.all_postings(), UnionPostingView)
    single = DiversityEngine.from_relation(relation, RANDOM_ORDERING).index
    assert list(sharded.all_postings()) == list(single.all_postings())
