"""Satellite: ``ServingEngine.search_page`` — cached diverse pagination.

The contract under test: pages served through the serving layer are
bit-identical to a from-scratch :class:`DiversePaginator` walk (cache
transparency), stable across repeated requests (cache hits), disjoint
across page numbers, and recomputed — never served stale — once the
index epoch moves.
"""

from __future__ import annotations

import pytest

from repro.core.pagination import DiversePaginator
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.serving import ServingEngine

QUERY = "Make = 'Honda'"


@pytest.fixture
def serving():
    engine = ServingEngine.from_relation(figure1_relation(), figure1_ordering())
    yield engine
    engine.close()


class TestSearchPage:
    def test_matches_paginator_from_scratch(self, serving):
        reference = DiversePaginator(serving.engine, QUERY, page_size=1)
        for number in (1, 2, 3):
            expected = reference.next_page()
            page = serving.search_page(QUERY, page=number, page_size=1)
            assert page.deweys == expected.deweys
            assert page.stats["page"] == number

    def test_pages_are_disjoint(self, serving):
        seen = set()
        for number in (1, 2, 3):
            page = serving.search_page(QUERY, page=number, page_size=1)
            for dewey in page.deweys:
                assert dewey not in seen
                seen.add(dewey)

    def test_repeat_request_is_cache_hit_with_identical_page(self, serving):
        first = serving.search_page(QUERY, page=2, page_size=1)
        assert first.stats["cache_hit"] == 0
        second = serving.search_page(QUERY, page=2, page_size=1)
        assert second.stats["cache_hit"] == 1
        assert second.deweys == first.deweys
        assert second.stats["page"] == 2

    def test_direct_deep_page_equals_sequential_walk(self, serving):
        # Request page 3 cold: the cache holds nothing, so the paginator
        # must rebuild pages 1-2 internally to exclude their rows.
        cold = serving.search_page(QUERY, page=3, page_size=1)
        serving.clear_cache()
        walked = [serving.search_page(QUERY, page=n, page_size=1)
                  for n in (1, 2, 3)]
        assert cold.deweys == walked[-1].deweys

    def test_cached_prefix_seeds_exclusions(self, serving):
        # Pages 1-2 cached; page 3 computes only the suffix but must
        # exclude exactly what the cached pages showed.
        first = serving.search_page(QUERY, page=1, page_size=1)
        second = serving.search_page(QUERY, page=2, page_size=1)
        third = serving.search_page(QUERY, page=3, page_size=1)
        assert third.stats["cache_hit"] == 0
        shown = set(first.deweys) | set(second.deweys)
        assert not shown & set(third.deweys)

    def test_epoch_bump_invalidates_pages(self, serving):
        stale = serving.search_page(QUERY, page=1, page_size=2)
        assert serving.search_page(QUERY, page=1, page_size=2).stats[
            "cache_hit"] == 1
        serving.insert(("Honda", "Prelude", "Black", 1999, "classic coupe"))
        fresh = serving.search_page(QUERY, page=1, page_size=2)
        assert fresh.stats["cache_hit"] == 0  # epoch moved: recomputed
        # And the recomputed page agrees with a from-scratch paginator
        # over the post-insert index.
        reference = DiversePaginator(serving.engine, QUERY, page_size=2)
        assert fresh.deweys == reference.next_page().deweys
        assert stale.k == fresh.k  # same shape, possibly different rows

    def test_page_size_defaults_to_k(self, serving):
        page = serving.search_page(QUERY, k=2)
        assert page.k == 2
        assert len(page) <= 2

    def test_parameter_validation(self, serving):
        with pytest.raises(ValueError):
            serving.search_page(QUERY, page=0)
        with pytest.raises(ValueError):
            serving.search_page(QUERY, page=1, page_size=0)
        with pytest.raises(ValueError):
            serving.search_page(QUERY, page=1, algorithm="naive")

    def test_onepass_pagination_supported(self, serving):
        probe = [serving.search_page(QUERY, page=n, page_size=1,
                                     algorithm="probe").deweys
                 for n in (1, 2)]
        serving.clear_cache()
        onepass = [serving.search_page(QUERY, page=n, page_size=1,
                                       algorithm="onepass").deweys
                   for n in (1, 2)]
        # Each driver pages without overlap (the drivers may pick
        # different — equally diverse — representatives from each other).
        assert probe[0] != probe[1]
        assert onepass[0] != onepass[1]
