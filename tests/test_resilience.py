"""Unit tests for the resilience subsystem and its serving integration.

Covers the building blocks in isolation (error taxonomy, policy/backoff,
deadline, circuit breaker, chaos injection, the FaultyShard proxy) and the
engine-level satellites: persistent thread-pool lifecycle, typed-error
propagation out of batched fan-outs, and the cache's behaviour when
queries fail or degrade.
"""

from __future__ import annotations

import random

import pytest

from repro import DiversityEngine, ServingCache, ServingEngine
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    ChaosPolicy,
    CircuitBreaker,
    Deadline,
    DeadlineExceededError,
    FaultyShard,
    ResilienceError,
    ResiliencePolicy,
    ShardCrashedError,
    ShardFaultSpec,
    ShardUnavailableError,
    TransientShardError,
)
from repro.sharding import ShardedEngine

from .conftest import RANDOM_ORDERING, random_relation


class FakeClock:
    """A manually advanced monotonic clock (seconds)."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
def test_error_taxonomy_subclassing():
    for cls in (TransientShardError, ShardCrashedError,
                ShardUnavailableError, DeadlineExceededError):
        assert issubclass(cls, ResilienceError)
    assert issubclass(ResilienceError, RuntimeError)


def test_transient_and_crash_errors_carry_context():
    error = TransientShardError(3, "token_postings")
    assert error.shard_id == 3
    assert error.operation == "token_postings"
    assert "shard 3" in str(error)
    crash = ShardCrashedError(1)
    assert crash.shard_id == 1
    assert "shard 1" in str(crash)


def test_shard_unavailable_error_reports_reasons():
    error = ShardUnavailableError({2: "crashed", 0: "circuit open"}, 4)
    assert error.shards_lost == [0, 2]
    assert error.shards_total == 4
    assert "2/4" in str(error)
    assert "crashed" in str(error) and "circuit open" in str(error)


def test_deadline_exceeded_error_carries_budget():
    error = DeadlineExceededError(50.0, 61.2)
    assert error.deadline_ms == 50.0
    assert error.elapsed_ms == 61.2
    assert "50" in str(error)


# ----------------------------------------------------------------------
# Policy + backoff
# ----------------------------------------------------------------------
def test_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(deadline_ms=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(backoff_multiplier=0.5)
    with pytest.raises(ValueError):
        ResiliencePolicy(jitter=1.5)
    with pytest.raises(ValueError):
        ResiliencePolicy(breaker_threshold=0.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(breaker_window=0)


def test_backoff_grows_exponentially_and_caps():
    policy = ResiliencePolicy(
        backoff_base_ms=2.0, backoff_multiplier=2.0, backoff_cap_ms=10.0,
        jitter=0.0,
    )
    assert [policy.backoff_ms(n) for n in (1, 2, 3, 4, 5)] == \
        [2.0, 4.0, 8.0, 10.0, 10.0]
    with pytest.raises(ValueError):
        policy.backoff_ms(0)


def test_backoff_jitter_is_bounded_and_deterministic():
    policy = ResiliencePolicy(
        backoff_base_ms=8.0, backoff_multiplier=1.0, jitter=0.5,
    )
    draws = [policy.backoff_ms(1, random.Random(42)) for _ in range(5)]
    assert draws == [policy.backoff_ms(1, random.Random(42)) for _ in range(5)]
    for delay in [policy.backoff_ms(1, random.Random(n)) for n in range(50)]:
        assert 4.0 <= delay <= 8.0  # (1 - jitter) * 8 .. 8


# ----------------------------------------------------------------------
# Deadline
# ----------------------------------------------------------------------
def test_deadline_counts_down_on_injected_clock():
    clock = FakeClock()
    deadline = Deadline(100.0, clock=clock)
    assert deadline.remaining_ms() == 100.0
    assert not deadline.expired()
    clock.advance(0.060)
    assert deadline.remaining_ms() == pytest.approx(40.0)
    assert deadline.elapsed_ms() == pytest.approx(60.0)
    clock.advance(0.050)
    assert deadline.expired()
    assert deadline.remaining_ms() == 0.0  # clamped, never negative


def test_deadline_unbounded():
    deadline = Deadline.unbounded()
    assert deadline.remaining_ms() == float("inf")
    assert not deadline.expired()
    with pytest.raises(ValueError):
        Deadline(-5.0)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------
def test_breaker_trips_at_threshold_and_recovers():
    clock = FakeClock()
    breaker = CircuitBreaker(
        threshold=0.5, window=4, min_calls=2, cooldown_ms=100.0, clock=clock
    )
    assert breaker.state == CLOSED and breaker.allow()
    breaker.record_failure()
    assert breaker.state == CLOSED  # one outcome < min_calls
    breaker.record_failure()
    assert breaker.state == OPEN and breaker.opens == 1
    assert not breaker.allow()
    clock.advance(0.099)
    assert breaker.state == OPEN
    clock.advance(0.002)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()       # the single trial slot
    assert not breaker.allow()   # taken
    breaker.record_success()     # trial healthy: fully closed
    assert breaker.state == CLOSED and breaker.allow()


def test_breaker_half_open_failure_reopens():
    clock = FakeClock()
    breaker = CircuitBreaker(
        threshold=1.0, window=4, min_calls=2, cooldown_ms=100.0, clock=clock
    )
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(0.2)
    assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN and breaker.opens == 2
    breaker.reset()
    assert breaker.state == CLOSED


def test_breaker_mixed_outcomes_below_threshold_stay_closed():
    breaker = CircuitBreaker(threshold=0.75, window=4, min_calls=4)
    for ok in (True, False, True, False):
        (breaker.record_success if ok else breaker.record_failure)()
    assert breaker.state == CLOSED
    assert breaker.failure_rate == 0.5


# ----------------------------------------------------------------------
# Chaos policy + FaultyShard
# ----------------------------------------------------------------------
def test_fault_spec_validation():
    with pytest.raises(ValueError):
        ShardFaultSpec(latency_ms=-1.0)
    with pytest.raises(ValueError):
        ShardFaultSpec(transient_rate=1.5)


def test_chaos_streams_are_seeded_and_independent():
    def faults(seed, shard_id, n=200, rate=0.3):
        chaos = ChaosPolicy.transient(rate, seed=seed)
        pattern = []
        for _ in range(n):
            try:
                chaos.before_read(shard_id, "read")
                pattern.append(False)
            except TransientShardError:
                pattern.append(True)
        return pattern

    assert faults(7, 0) == faults(7, 0)          # reproducible
    assert faults(7, 0) != faults(7, 1)          # per-shard streams differ
    assert faults(7, 0) != faults(8, 0)          # seed matters
    assert any(faults(7, 0)) and not all(faults(7, 0))


def test_chaos_crash_and_revive_at_runtime():
    chaos = ChaosPolicy()
    chaos.before_read(0, "read")  # healthy: no-op
    chaos.crash(0)
    with pytest.raises(ShardCrashedError):
        chaos.before_read(0, "read")
    chaos.before_read(1, "read")  # other shards unaffected
    chaos.revive(0)
    chaos.before_read(0, "read")
    assert chaos.injected["crash"] == 1


def test_chaos_latency_uses_injected_sleep():
    naps = []
    chaos = ChaosPolicy(
        default=ShardFaultSpec(latency_ms=25.0), sleep=naps.append
    )
    chaos.before_read(0, "read")
    chaos.before_read(1, "read")
    assert naps == [0.025, 0.025]
    assert chaos.injected["latency"] == 2


def test_faulty_shard_proxies_control_plane_and_injects_reads(cars_index):
    chaos = ChaosPolicy.crash_shards(0)
    shard = FaultyShard(cars_index, 0, chaos)
    # Control plane passes through uninjected.
    assert shard.relation is cars_index.relation
    assert shard.ordering is cars_index.ordering
    assert shard.epoch == cars_index.epoch
    assert len(shard) == len(cars_index)
    assert shard.inner is cars_index
    # Data-path reads crash.
    for read in (
        lambda: shard.scalar_postings("Make", "Honda"),
        lambda: shard.token_postings("Description", "low"),
        lambda: shard.all_postings(),
        lambda: shard.vocabulary("Make"),
    ):
        with pytest.raises(ShardCrashedError):
            read()


def test_inject_and_clear_chaos_round_trip():
    relation = random_relation(random.Random(3), max_rows=20)
    engine = ShardedEngine.from_relation(relation, RANDOM_ORDERING, shards=2)
    assert engine.sharded_index.chaos is None
    chaos = engine.inject_chaos(ChaosPolicy.crash_shards(0))
    assert engine.sharded_index.chaos is chaos
    # Re-injecting replaces rather than stacking wrappers.
    other = engine.inject_chaos(ChaosPolicy())
    assert engine.sharded_index.chaos is other
    assert all(
        not isinstance(shard.inner, FaultyShard)
        for shard in engine.sharded_index.shards
    )
    engine.clear_chaos()
    assert engine.sharded_index.chaos is None


# ----------------------------------------------------------------------
# Persistent pool lifecycle (satellite 1)
# ----------------------------------------------------------------------
def _small_sharded(workers=0, policy=None, shards=2, seed=11):
    relation = random_relation(random.Random(seed), max_rows=30)
    return ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=shards, workers=workers, policy=policy
    )


def test_sharded_engine_pool_is_persistent_and_closable():
    engine = _small_sharded(workers=2)
    assert engine._pool is None  # lazy
    engine.search("make = 'A'", 5, algorithm="naive")
    pool = engine._pool
    assert pool is not None
    engine.search("make = 'B'", 5, algorithm="naive")
    assert engine._pool is pool  # reused, not rebuilt per query
    engine.close()
    assert engine._pool is None
    engine.close()  # idempotent
    # Usable again after close: the pool is lazily recreated.
    result = engine.search("make = 'A'", 5, algorithm="naive")
    assert result.stats["degraded"] is False
    engine.close()


def test_sharded_engine_context_manager_closes_pool():
    with _small_sharded(workers=2) as engine:
        engine.search("make = 'A'", 5, algorithm="naive")
        assert engine._pool is not None
    assert engine._pool is None


def test_serving_engine_pool_is_persistent_and_resized():
    relation = random_relation(random.Random(13), max_rows=30)
    with ServingEngine.from_relation(relation, RANDOM_ORDERING) as serving:
        queries = ["make = 'A'", "make = 'B'"]
        serving.search_many(queries, k=5, threads=2)
        pool = serving._pool
        assert pool is not None
        serving.search_many(queries, k=5, threads=2)
        assert serving._pool is pool            # same size: reused
        serving.search_many(queries, k=5, threads=3)
        assert serving._pool is not pool        # resized: rebuilt
    assert serving._pool is None


def test_plain_engine_close_is_noop():
    relation = random_relation(random.Random(17), max_rows=10)
    with DiversityEngine.from_relation(relation, RANDOM_ORDERING) as engine:
        engine.search("make = 'A'", 3)
    engine.search("make = 'A'", 3)  # still fine after close


# ----------------------------------------------------------------------
# Typed-error propagation out of batched fan-outs (satellite 2)
# ----------------------------------------------------------------------
def test_search_many_surfaces_typed_error_and_pool_survives():
    relation = random_relation(random.Random(19), max_rows=30)
    with ServingEngine.from_relation(
        relation, RANDOM_ORDERING, shards=2,
        policy=ResiliencePolicy(max_retries=0),
    ) as serving:
        serving.engine.inject_chaos(ChaosPolicy.crash_shards(0))
        queries = ["make = 'A'", "model = 'm1' OR color = 'red'"] * 3
        with pytest.raises(ShardUnavailableError) as excinfo:
            serving.search_many(queries, k=5, algorithm="probe", threads=2)
        assert 0 in excinfo.value.failures
        pool = serving._pool
        assert pool is not None  # pool intact after the failure
        # Degradable algorithm on the same pool still answers.
        report = serving.search_many(queries, k=5, algorithm="naive", threads=2)
        assert serving._pool is pool
        assert len(report.results) == len(queries)
        assert all(r.stats["degraded"] for r in report.results)


def test_search_many_sequential_propagates_typed_error():
    relation = random_relation(random.Random(23), max_rows=30)
    with ServingEngine.from_relation(
        relation, RANDOM_ORDERING, shards=2,
        policy=ResiliencePolicy(max_retries=0),
    ) as serving:
        serving.engine.inject_chaos(ChaosPolicy.crash_shards(1))
        with pytest.raises(ShardUnavailableError):
            serving.search_many(
                ["model = 'm1' OR color = 'red'"], k=5, algorithm="onepass"
            )


# ----------------------------------------------------------------------
# Cache under failure (satellite 3)
# ----------------------------------------------------------------------
def test_degraded_results_are_never_cached():
    engine = _small_sharded(seed=29)
    cache = ServingCache()
    engine.attach_cache(cache)
    engine.inject_chaos(ChaosPolicy.crash_shards(0))
    first = engine.search("make = 'A' OR make = 'B'", 5, algorithm="naive")
    second = engine.search("make = 'A' OR make = 'B'", 5, algorithm="naive")
    assert first.stats["degraded"] and second.stats["degraded"]
    assert cache.stats.hits == 0
    assert cache.stats.misses == 2  # the degraded answer was not stored
    assert len(cache.results) == 0


def test_cached_full_answer_serves_through_outage_at_same_epoch():
    engine = _small_sharded(seed=31)
    cache = ServingCache()
    engine.attach_cache(cache)
    query = "make = 'A' OR make = 'B'"
    healthy = engine.search(query, 5, algorithm="naive")
    assert healthy.stats["degraded"] is False
    chaos = engine.inject_chaos(ChaosPolicy.crash_shards(0))
    # Same epoch: the cached full answer keeps serving while the shard is
    # down — the outage is invisible to repeat traffic.
    during = engine.search(query, 5, algorithm="naive")
    assert during.stats["cache_hit"] == 1
    assert not during.stats.get("degraded")
    assert [i.dewey for i in during] == [i.dewey for i in healthy]
    # A *new* query during the outage degrades (and is not cached) ...
    fresh = engine.search("model = 'm1'", 5, algorithm="naive")
    assert fresh.stats["degraded"]
    # ... and once the shard revives, it computes and caches normally.
    chaos.revive(0)
    recovered = engine.search("model = 'm1'", 5, algorithm="naive")
    assert recovered.stats["degraded"] is False
    again = engine.search("model = 'm1'", 5, algorithm="naive")
    assert again.stats["cache_hit"] == 1


def test_mutation_during_outage_invalidates_cached_answer():
    engine = _small_sharded(seed=37)
    cache = ServingCache()
    engine.attach_cache(cache)
    query = "make = 'A' OR make = 'B'"
    engine.search(query, 5, algorithm="naive")
    engine.inject_chaos(ChaosPolicy.crash_shards(0))
    engine.insert(("A", "m2", "blue", "clean"))  # bumps a shard epoch
    # The cached answer is stale (epoch moved): the re-execution runs
    # against the degraded deployment and must not be served as full.
    result = engine.search(query, 5, algorithm="naive")
    assert result.stats["cache_hit"] == 0
    assert result.stats["degraded"]


def test_resilience_stats_present_on_healthy_sharded_results():
    engine = _small_sharded(seed=41)
    for algorithm in ("naive", "probe"):
        result = engine.search("make = 'A'", 5, algorithm=algorithm)
        stats = result.stats
        assert stats["degraded"] is False
        assert stats["shards_failed"] == 0
        assert stats["shards_total"] == 2
        assert stats["retries"] == 0
        assert stats["deadline_ms"] == 0
