"""Tests for listing deletion (tombstones + index removal) end to end."""

import pytest

from repro import DiversityEngine, is_diverse
from repro.core.incremental import DiverseView
from repro.data.paper_example import figure1_ordering, figure1_relation
from repro.index.inverted import InvertedIndex
from repro.index.postings import ArrayPostingList, BTreePostingList
from repro.index.snapshot import load_index, save_index
from repro.query.evaluate import res, selectivity
from repro.query.parser import parse_query
from repro.storage.csvio import to_csv_string


class TestRelationTombstones:
    def test_delete_and_flags(self, cars):
        assert cars.delete(3)
        assert cars.is_deleted(3)
        assert not cars.delete(3)  # idempotent False
        assert cars.live_count == 14
        assert len(cars) == 15  # slots stay

    def test_out_of_range(self, cars):
        with pytest.raises(IndexError):
            cars.delete(99)

    def test_scan_skips_deleted(self, cars):
        cars.delete(0)
        assert 0 not in list(cars.scan())

    def test_iter_live(self, cars):
        cars.delete(1)
        rids = [rid for rid, _ in cars.iter_live()]
        assert 1 not in rids and len(rids) == 14

    def test_distinct_values_ignore_deleted(self, cars):
        for rid in range(11, 15):
            cars.delete(rid)
        assert cars.distinct_values("Make") == ["Honda"]

    def test_evaluate_skips_deleted(self, cars):
        cars.delete(11)
        assert 11 not in res(cars, parse_query("Make = 'Toyota'"))
        assert selectivity(cars, parse_query("Make = 'Toyota'")) == pytest.approx(
            3 / 14
        )

    def test_csv_exports_live_only(self, cars):
        cars.delete(0)
        text = to_csv_string(cars)
        assert len(text.strip().splitlines()) == 1 + 14


@pytest.mark.parametrize("backend_cls", [ArrayPostingList, BTreePostingList])
class TestPostingRemoval:
    def test_remove(self, backend_cls):
        postings = backend_cls([(0, 1), (2, 3)])
        assert postings.remove((0, 1))
        assert len(postings) == 1
        assert (0, 1) not in postings
        assert not postings.remove((0, 1))

    def test_remove_absent(self, backend_cls):
        postings = backend_cls([(0, 1)])
        assert not postings.remove((9, 9))


class TestIndexRemoval:
    def test_remove_unindexes_everywhere(self, cars):
        index = InvertedIndex.build(cars, figure1_ordering())
        dewey = index.dewey.dewey_of(0)
        assert index.remove(0) == dewey
        assert len(index) == 14
        assert dewey not in index.scalar_postings("Make", "Honda")
        assert dewey not in index.token_postings("Description", "miles")
        assert 0 not in index.dewey
        assert index.remove(0) is None  # idempotent

    def test_queries_stop_returning_removed(self, cars):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        before = engine.search("Description CONTAINS 'rare'", k=5)
        assert len(before) == 1
        rid = before[0].rid
        assert engine.delete(rid)
        after = engine.search("Description CONTAINS 'rare'", k=5)
        assert len(after) == 0

    def test_engine_delete_is_idempotent(self, cars_engine):
        assert cars_engine.delete(5)
        assert not cars_engine.delete(5)

    def test_results_stay_diverse_after_deletions(self, cars):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        # Sell three of the four Toyotas.
        for rid in (11, 12, 13):
            engine.delete(rid)
        result = engine.search("Year = 2007", k=5)
        full = [
            engine.index.dewey.dewey_of(r)
            for r in res(cars, parse_query("Year = 2007"))
        ]
        assert is_diverse(result.deweys, full, 5)
        toyotas = sum(1 for item in result if item["Make"] == "Toyota")
        assert toyotas == 1  # only the remaining one

    def test_insert_convenience(self, cars_engine):
        rid = cars_engine.insert(("Tesla", "ModelS", "Red", 2008, "fast"))
        result = cars_engine.search("Make = 'Tesla'", k=2)
        assert result.rids == [rid]

    def test_reinsert_same_values_after_delete(self, cars):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        engine.delete(7)  # the 'Rare' Odyssey
        rid = engine.insert(("Honda", "Odyssey", "Green", 2007, "Rare"))
        result = engine.search("Description CONTAINS 'rare'", k=3)
        assert result.rids == [rid]


class TestDeletionProperties:
    """Randomized: algorithms stay exact under arbitrary delete patterns."""

    def test_random_deletions_keep_all_algorithms_diverse(self):
        import random

        from repro.core.similarity import is_scored_diverse
        from repro.query.evaluate import scored_res

        from .conftest import RANDOM_ORDERING, random_query, random_relation

        for seed in range(25):
            rng = random.Random(1000 + seed)
            relation = random_relation(rng, max_rows=40)
            engine = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
            total = len(relation)
            for rid in rng.sample(range(total), k=total // 3):
                engine.delete(rid)
            query = random_query(rng, weighted=True)
            k = rng.randint(1, 8)
            full = [
                engine.index.dewey.dewey_of(r) for r in res(relation, query)
            ]
            for algorithm in ("probe", "onepass", "naive"):
                result = engine.search(query, k=k, algorithm=algorithm)
                assert is_diverse(result.deweys, full, k), (seed, algorithm)
            sres = {
                engine.index.dewey.dewey_of(r): s
                for r, s in scored_res(relation, query)
            }
            scored = engine.search(query, k=k, algorithm="probe", scored=True)
            assert is_scored_diverse(scored.deweys, sres, k), seed

    def test_delete_everything_then_queries_empty(self, cars):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        for rid in range(len(cars)):
            engine.delete(rid)
        assert len(engine.search("", k=10)) == 0
        assert engine.relation.live_count == 0


class TestDeletionWithSnapshotAndView:
    def test_snapshot_roundtrips_deletions(self, cars, tmp_path):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        engine.delete(11)
        path = tmp_path / "cars.idx"
        save_index(engine.index, path)
        restored = DiversityEngine(load_index(path))
        assert restored.relation.is_deleted(11)
        assert restored.relation.live_count == 14
        assert len(restored.search("Make = 'Toyota'", k=10)) == 3

    def test_view_retract(self, cars):
        engine = DiversityEngine.from_relation(cars, figure1_ordering())
        view = DiverseView(engine, "Make = 'Toyota'", k=4)
        assert len(view) == 4
        victim = view.items()[0].rid
        assert view.retract_rid(victim)
        assert len(view) == 3
        assert not view.retract_rid(victim)
        engine.delete(victim)
        view.refresh()
        assert len(view) == 3  # only three Toyotas remain
