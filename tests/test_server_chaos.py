"""Chaos over HTTP: the replication contract at the wire, end to end.

The replication differential suite (test_replication_differential.py)
proves the failover invariants engine-side; this file proves they
survive the full serving stack — admission, caching, response headers —
by running chaos against a live ``ServerThread``:

* a killed *minority* of replicas (plus an always-flaky copy) yields
  plain ``200`` responses, bit-identical to a fault-free unsharded
  reference, with no ``X-Repro-Degraded`` header — failover is
  invisible at the wire;
* killing *every* replica of a shard falls back to the PR 8 degraded
  taxonomy: scan algorithms answer ``503``, gather algorithms answer
  ``200`` + ``X-Repro-Degraded``, and the degraded answer is never
  cached (recovery serves a fresh ``miss``, then a ``hit``).
"""

from __future__ import annotations

import http.client
import json
import random
import urllib.parse

import pytest

from repro import DiversityEngine
from repro.observability import MetricsRegistry, use_registry
from repro.resilience import ChaosPolicy, ResiliencePolicy, ShardFaultSpec
from repro.server import ServerConfig, ServerThread
from repro.serving import ServingEngine

from .conftest import RANDOM_ORDERING, random_relation

#: ``color`` is not the level-1 routing attribute, so this query fans out
#: to every shard — chaos on any shard is guaranteed to be on the read
#: path (a ``make = ...`` scalar would route to a single shard).
QUERY = urllib.parse.quote("color = 'red'")

#: Generous retries, breakers disabled (min_calls above the window):
#: failover behaviour is purely crash/flake-driven and deterministic.
TRANSPARENT = ResiliencePolicy(
    max_retries=10,
    backoff_base_ms=0.01,
    backoff_cap_ms=0.05,
    breaker_window=8,
    breaker_min_calls=9,
)


def _request(address, target, headers=None, timeout=30.0):
    """One GET against the test server; returns (status, headers, body)."""
    host, port = address
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", target, headers=headers or {})
        response = connection.getresponse()
        return response.status, dict(response.getheaders()), response.read()
    finally:
        connection.close()


def _http_payload(document):
    return [
        (tuple(item["dewey"]), item["rid"],
         tuple(sorted(item["values"].items())), item["score"])
        for item in document["items"]
    ]


def _engine_payload(result):
    return [
        (item.dewey, item.rid, tuple(sorted(item.values.items())), item.score)
        for item in result
    ]


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    with use_registry(fresh):
        yield fresh


@pytest.fixture
def rig(registry):
    """A replicated sharded server plus its fault-free unsharded twin."""
    relation = random_relation(random.Random(4242), max_rows=50)
    reference = DiversityEngine.from_relation(relation, RANDOM_ORDERING)
    serving = ServingEngine.from_relation(
        relation, RANDOM_ORDERING, shards=2,
        policy=TRANSPARENT, replicas=2,
    )
    with ServerThread(serving, ServerConfig(), registry=registry) as thread:
        yield serving, reference, thread.address
    serving.close()
    reference.close()


class TestReplicatedServer:
    def test_minority_replica_loss_is_invisible_at_the_wire(
            self, rig, registry):
        serving, reference, address = rig
        engine = serving.engine
        chaos = engine.inject_chaos(ChaosPolicy(seed=21))
        # One dead copy on shard 0, one 100%-flaky copy on shard 1: every
        # shard still has a healthy replica, so nothing may degrade.
        chaos.crash(0, replica_id=0)
        chaos.set_spec((1, 0), ShardFaultSpec(transient_rate=1.0))
        k = 4
        for algorithm in ("probe", "onepass", "multq", "naive", "basic"):
            target = (f"/search?q={QUERY}&k={k}&algorithm={algorithm}"
                      f"&deadline_ms=0")
            status, headers, body = _request(address, target)
            assert status == 200, (algorithm, body)
            assert "X-Repro-Degraded" not in headers
            document = json.loads(body)
            assert document["degraded"] is False
            expected = reference.search(
                json_query(), k, algorithm=algorithm)
            assert _http_payload(document) == _engine_payload(expected), (
                f"algorithm={algorithm}")
        # The faults genuinely fired, and replica failover absorbed them.
        assert chaos.injected["crash"] > 0
        assert chaos.injected["transient"] > 0
        assert any(replica_set.failovers > 0
                   for replica_set in engine.sharded_index.shards)
        # The failovers are visible on the public metrics endpoint.
        status, _, body = _request(address, "/metrics")
        assert status == 200
        assert b"repro_replica_failovers_total" in body

    def test_total_shard_loss_falls_back_to_degraded_taxonomy(self, rig):
        serving, reference, address = rig
        engine = serving.engine
        chaos = engine.inject_chaos(ChaosPolicy(seed=22))
        chaos.crash(0, replica_id=0)
        chaos.crash(0, replica_id=1)          # every copy of shard 0 gone
        # Scan algorithms cannot certify their bound without the shard:
        # the server maps ShardUnavailableError to a retryable 503.
        status, _, body = _request(
            address, f"/search?q={QUERY}&k=3&algorithm=probe&deadline_ms=0")
        assert status == 503
        assert json.loads(body)["status"] == 503
        # Gather algorithms answer from the survivors: 200, flagged.
        target = f"/search?q={QUERY}&k=3&algorithm=naive&deadline_ms=0"
        status, headers, body = _request(address, target)
        assert status == 200
        assert headers["X-Repro-Degraded"] == "shards=1/2"
        assert json.loads(body)["degraded"] is True
        # A degraded answer must never be served from cache: the repeat is
        # recomputed (and still flagged), not a "hit" of the outage.
        status, headers, _ = _request(address, target)
        assert headers.get("X-Repro-Cache") != "hit"
        assert headers["X-Repro-Degraded"] == "shards=1/2"
        # After recovery the same request is computed fresh and exact...
        engine.clear_chaos()
        status, headers, body = _request(address, target)
        assert status == 200
        assert "X-Repro-Degraded" not in headers
        assert headers["X-Repro-Cache"] == "miss"
        document = json.loads(body)
        assert document["degraded"] is False
        expected = reference.search(json_query(), 3, algorithm="naive")
        assert _http_payload(document) == _engine_payload(expected)
        # ...and the healthy answer is cache-eligible again.
        status, headers, _ = _request(address, target)
        assert headers["X-Repro-Cache"] == "hit"


def json_query():
    """The parsed form of :data:`QUERY`, for the in-process reference."""
    from repro.query.parser import parse_query

    return parse_query(urllib.parse.unquote(QUERY))
