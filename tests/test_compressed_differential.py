"""Differential proof of the compressed posting backend (PR tentpole).

The contract: an engine over ``backend="compressed"`` answers every query
*bit-identically* to the sorted-array backend — same Dewey IDs, same rids,
same materialised values, same scores, same order — for all five
algorithms, scored and unscored, sharded (1/2/4 shards) and unsharded,
across interleaved insert/delete mutations, and through a snapshot
save/load cycle that ships the packed buffers verbatim.
"""

from __future__ import annotations

import random

import pytest

from repro import DiversityEngine, Relation
from repro.core.engine import ALGORITHMS
from repro.core.ordering import DiversityOrdering
from repro.index.inverted import InvertedIndex
from repro.index.snapshot import build_payload, load_index, save_index
from repro.sharding import ShardedEngine

from .conftest import (
    COLORS,
    MAKES,
    MODELS,
    RANDOM_ORDERING,
    WORDS,
    random_query,
    random_relation,
)

SHARD_COUNTS = [1, 2, 4]
K_VALUES = [1, 3, 7]


def _payload(result):
    return [
        (item.dewey, item.rid, tuple(sorted(item.values.items())), item.score)
        for item in result
    ]


def _clone(relation: Relation) -> Relation:
    rows = [row for _, row in relation.iter_live()]
    return Relation.from_rows(relation.schema, rows, name=relation.name)


def _assert_identical(reference, candidate, query, k, context=""):
    for algorithm in ALGORITHMS:
        for scored in (False, True):
            expected = reference.search(query, k, algorithm=algorithm, scored=scored)
            actual = candidate.search(query, k, algorithm=algorithm, scored=scored)
            assert _payload(actual) == _payload(expected), (
                f"{context} algorithm={algorithm} scored={scored} "
                f"k={k} query={query!r}"
            )


def _random_row(rng):
    return (
        rng.choice(MAKES),
        rng.choice(MODELS),
        rng.choice(COLORS),
        " ".join(rng.sample(WORDS, rng.randint(1, 3))),
    )


# ----------------------------------------------------------------------
# Static differential: unsharded, every algorithm
# ----------------------------------------------------------------------
def test_compressed_matches_array_unsharded():
    rng = random.Random(4021)
    for trial in range(5):
        relation = random_relation(rng, max_rows=60)
        reference = DiversityEngine.from_relation(
            relation, RANDOM_ORDERING, backend="array"
        )
        candidate = DiversityEngine.from_relation(
            _clone(relation), RANDOM_ORDERING, backend="compressed"
        )
        for _ in range(6):
            query = random_query(rng, weighted=rng.random() < 0.5)
            _assert_identical(
                reference, candidate, query, rng.choice(K_VALUES),
                context=f"trial={trial}",
            )


def test_compressed_matches_on_figure1(cars):
    from repro.data.paper_example import figure1_ordering

    reference = DiversityEngine.from_relation(cars, figure1_ordering())
    candidate = DiversityEngine.from_relation(
        _clone(cars), figure1_ordering(), backend="compressed"
    )
    for k in (1, 5, 10, 20):
        _assert_identical(reference, candidate, "Make = 'Honda'", k)
        _assert_identical(
            reference,
            candidate,
            "Make = 'Honda' [2] OR Description CONTAINS 'low'",
            k,
        )


# ----------------------------------------------------------------------
# Sharded differential: 1, 2 and 4 compressed shards vs unsharded array
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_sharded_compressed_matches_unsharded_array(shards):
    rng = random.Random(900 + shards)
    for trial in range(3):
        relation = random_relation(rng, max_rows=60)
        reference = DiversityEngine.from_relation(
            relation, RANDOM_ORDERING, backend="array"
        )
        candidate = ShardedEngine.from_relation(
            _clone(relation), RANDOM_ORDERING, shards=shards,
            backend="compressed",
        )
        for _ in range(5):
            query = random_query(rng, weighted=rng.random() < 0.5)
            _assert_identical(
                reference, candidate, query, rng.choice(K_VALUES),
                context=f"shards={shards} trial={trial}",
            )


# ----------------------------------------------------------------------
# Interleaved mutations: inserts and deletes mid-workload
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_compressed_matches_after_interleaved_mutations(shards):
    rng = random.Random(555 + shards)
    base = random_relation(rng, max_rows=40)
    reference = DiversityEngine.from_relation(base, RANDOM_ORDERING)
    candidate = ShardedEngine.from_relation(
        _clone(base), RANDOM_ORDERING, shards=shards, backend="compressed"
    )
    live = list(range(len(base)))
    for _ in range(30):
        op = rng.random()
        if op < 0.35:
            row = _random_row(rng)
            rid_a = reference.insert(row)
            rid_b = candidate.insert(row)
            assert rid_a == rid_b
            live.append(rid_a)
        elif op < 0.55 and live:
            rid = live.pop(rng.randrange(len(live)))
            assert reference.delete(rid)
            assert candidate.delete(rid)
        else:
            query = random_query(rng, weighted=rng.random() < 0.5)
            _assert_identical(
                reference, candidate, query, rng.choice(K_VALUES),
                context=f"shards={shards}",
            )
    _assert_identical(reference, candidate, random_query(rng), 5)


def test_unsharded_compressed_mutation_differential():
    """Enough churn to force tail compactions and tombstone merges."""
    rng = random.Random(808)
    base = random_relation(rng, max_rows=30)
    reference = DiversityEngine.from_relation(base, RANDOM_ORDERING)
    candidate = DiversityEngine.from_relation(
        _clone(base), RANDOM_ORDERING, backend="compressed"
    )
    live = list(range(len(base)))
    for step in range(120):
        if rng.random() < 0.6:
            row = _random_row(rng)
            assert reference.insert(row) == candidate.insert(row)
            live.append(len(live))
        elif live:
            rid = live.pop(rng.randrange(len(live)))
            assert reference.delete(rid) == candidate.delete(rid)
        if step % 20 == 19:
            _assert_identical(
                reference, candidate, random_query(rng), rng.choice(K_VALUES)
            )
    assert reference.index.dewey.all_deweys() == candidate.index.dewey.all_deweys()


# ----------------------------------------------------------------------
# Snapshot differential: the packed buffers travel and answer identically
# ----------------------------------------------------------------------
def test_compressed_snapshot_ships_packed_buffers_and_answers_identically(
    tmp_path,
):
    rng = random.Random(2718)
    relation = random_relation(rng, max_rows=50)
    index = InvertedIndex.build(
        relation, DiversityOrdering(RANDOM_ORDERING), backend="compressed"
    )
    engine = DiversityEngine(index)
    for _ in range(15):
        engine.insert(_random_row(rng))
    for rid in rng.sample(range(len(relation)), k=len(relation) // 4):
        engine.delete(rid)

    payload = build_payload(index)
    assert payload["backend"] == "compressed"
    postings = payload["postings"]
    assert postings is not None
    assert postings["all"]["format"] == "repro-packed-postings"
    assert all(entry[2]["format"] == "repro-packed-postings"
               for entry in postings["scalar"])

    path = tmp_path / "compressed.idx"
    save_index(index, path)
    restored = load_index(path)
    assert restored.backend == "compressed"
    assert restored.dewey.all_deweys() == index.dewey.all_deweys()

    reference = DiversityEngine(index)
    candidate = DiversityEngine(restored)
    for _ in range(8):
        query = random_query(rng, weighted=rng.random() < 0.5)
        _assert_identical(reference, candidate, query, rng.choice(K_VALUES))


def test_compressed_snapshot_roundtrips_like_array(tmp_path):
    """Array and compressed snapshots of the same rows restore to engines
    that answer identically — the wire format changes, the answers don't."""
    rng = random.Random(31415)
    relation = random_relation(rng, max_rows=40)
    engines = {}
    for backend in ("array", "compressed"):
        index = InvertedIndex.build(
            _clone(relation), DiversityOrdering(RANDOM_ORDERING), backend=backend
        )
        path = tmp_path / f"{backend}.idx"
        save_index(index, path)
        engines[backend] = DiversityEngine(load_index(path))
    for _ in range(8):
        query = random_query(rng, weighted=rng.random() < 0.5)
        _assert_identical(
            engines["array"], engines["compressed"], query, rng.choice(K_VALUES)
        )
