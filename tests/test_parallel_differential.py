"""Process-backend differential suite: bit-identical to serial, always.

The tentpole contract of the process fan-out: moving the gather work into
worker processes must be answer-invisible.  Every algorithm (all 5,
scored and unscored), over array and compressed posting backends, at 2
and 4 shards, through fork- and spawn-bootstrapped workers, returns
payloads bit-identical to an unsharded single-threaded engine — and a
mutation between queries is fenced (the stale replica's answer is
rejected and the pool re-bootstrapped at the new epoch), never merged.
"""

from __future__ import annotations

import multiprocessing as mp
import random

import pytest

from repro import DiversityEngine
from repro.core.engine import ALGORITHMS
from repro.durability.sharded import create_sharded_store
from repro.sharding import ShardedEngine

from .conftest import RANDOM_ORDERING, random_query, random_relation

HAS_FORK = "fork" in mp.get_all_start_methods()

SHARD_COUNTS = [2, 4]
BACKENDS = ["array", "compressed"]
K_VALUES = [1, 3, 7]


def _payload(result):
    return [
        (item.dewey, item.rid, tuple(sorted(item.values.items())), item.score)
        for item in result
    ]


def _trials(rng, count=4):
    """(query, k) pairs mixing weighted and unweighted trees."""
    return [
        (random_query(rng, weighted=trial % 2 == 0), rng.choice(K_VALUES))
        for trial in range(count)
    ]


def _assert_identical(engine, reference, trials, context):
    for query, k in trials:
        for algorithm in ALGORITHMS:
            for scored in (False, True):
                expected = reference.search(
                    query, k, algorithm=algorithm, scored=scored
                )
                actual = engine.search(
                    query, k, algorithm=algorithm, scored=scored
                )
                assert _payload(actual) == _payload(expected), (
                    f"{context} algorithm={algorithm} scored={scored} "
                    f"k={k} query={query!r}"
                )
                assert not actual.stats.get("degraded")


# ----------------------------------------------------------------------
# Fork workers: every algorithm, backend and shard count
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("backend", BACKENDS)
def test_fork_workers_match_serial(shards, backend):
    rng = random.Random(900 + shards * 10 + len(backend))
    relation = random_relation(rng, max_rows=60)
    reference = DiversityEngine.from_relation(
        relation, RANDOM_ORDERING, backend=backend
    )
    with ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=shards, backend=backend,
        workers=2, worker_mode="fork",
    ) as engine:
        assert engine.resolved_worker_mode == "fork"
        _assert_identical(engine, reference, _trials(rng),
                          f"fork shards={shards} backend={backend}")
        # The pool really was used (the gather algorithms went through it).
        assert engine._process_pool is not None
        assert engine._process_pool.width == 2
    assert mp.active_children() == []


# ----------------------------------------------------------------------
# Spawn workers: bootstrap from the durable per-shard snapshot dirs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_spawn_workers_match_serial(tmp_path, backend):
    rng = random.Random(950 + len(backend))
    relation = random_relation(rng, max_rows=50)
    reference = DiversityEngine.from_relation(
        relation, RANDOM_ORDERING, backend=backend
    )
    with ShardedEngine.from_relation(
        relation, RANDOM_ORDERING, shards=2, backend=backend,
        workers=2, worker_mode="spawn",
    ) as engine:
        create_sharded_store(engine.sharded_index, tmp_path)
        _assert_identical(engine, reference, _trials(rng, count=2),
                          f"spawn backend={backend}")
    assert mp.active_children() == []


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
def test_fork_and_spawn_agree(tmp_path):
    """Platform parity: both bootstrap paths serve the same answers."""
    rng = random.Random(42)
    relation = random_relation(rng, max_rows=50)
    trials = _trials(rng, count=3)

    def collect(mode):
        with ShardedEngine.from_relation(
            relation, RANDOM_ORDERING, shards=4, workers=2, worker_mode=mode
        ) as engine:
            if mode == "spawn":
                create_sharded_store(engine.sharded_index, tmp_path)
            return [
                _payload(engine.search(query, k, algorithm=algorithm,
                                       scored=scored))
                for query, k in trials
                for algorithm, scored in (
                    ("naive", False), ("naive", True), ("basic", False)
                )
            ]

    # Spawn first: the store must snapshot the unmutated index.
    spawn_answers = collect("spawn")
    fork_answers = collect("fork")
    assert fork_answers == spawn_answers


# ----------------------------------------------------------------------
# Epoch fencing: mutate between queries, answers stay exact
# ----------------------------------------------------------------------
@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
def test_mutation_between_queries_is_fenced_not_merged():
    rng = random.Random(77)
    relation_a = random_relation(random.Random(66), max_rows=40)
    relation_b = random_relation(random.Random(66), max_rows=40)
    reference = DiversityEngine.from_relation(relation_a, RANDOM_ORDERING)
    with ShardedEngine.from_relation(
        relation_b, RANDOM_ORDERING, shards=3, workers=2, worker_mode="fork"
    ) as engine:
        trials = _trials(rng, count=2)
        _assert_identical(engine, reference, trials, "pre-mutation")
        first_pool = engine._process_pool
        assert first_pool is not None
        # Mutate: the workers' fork-inherited replicas are now stale.
        for row in [("A", "m1", "red", "fun miles"),
                    ("B", "m2", "blue", "rare clean")]:
            assert reference.insert(row) == engine.insert(row)
        assert first_pool.stale()
        # Every post-mutation answer reflects the new rows exactly: the
        # engine re-bootstrapped the workers rather than merging any
        # stale candidate list.
        _assert_identical(engine, reference, trials, "post-mutation")
        assert engine._process_pool.built_epochs == \
            engine.sharded_index.shard_epochs()
    assert mp.active_children() == []


@pytest.mark.skipif(not HAS_FORK, reason="fork start method unavailable")
def test_delete_between_queries_is_fenced():
    rng = random.Random(88)
    relation_a = random_relation(random.Random(99), max_rows=40)
    relation_b = random_relation(random.Random(99), max_rows=40)
    reference = DiversityEngine.from_relation(relation_a, RANDOM_ORDERING)
    with ShardedEngine.from_relation(
        relation_b, RANDOM_ORDERING, shards=2, workers=2, worker_mode="fork"
    ) as engine:
        query, k = _trials(rng, count=1)[0]
        engine.search(query, k, algorithm="naive")  # builds the pool
        victim = next(reference.index.relation.iter_live())[0]
        reference.delete(victim)
        engine.delete(victim)
        _assert_identical(engine, reference, [(query, k)], "post-delete")
    assert mp.active_children() == []
