#!/usr/bin/env python3
"""Quickstart: diverse top-k search over the paper's Figure 1 database.

Run:  python examples/quickstart.py
"""

from repro import DiversityEngine
from repro.data.paper_example import figure1_ordering, figure1_relation


def main() -> None:
    # 1. Load the relation from Figure 1(a) of the paper.
    cars = figure1_relation()
    print(f"Loaded {len(cars)} car listings.\n")

    # 2. Build the Dewey-encoded inverted index.  The diversity ordering is
    #    the domain expert's priority: vary Make first, then Model, then
    #    Color, then Year, then Description.
    engine = DiversityEngine.from_relation(cars, figure1_ordering())
    print(engine.explain("Make = 'Honda'"), "\n")

    # 3. The headline example: show 4 Hondas -> 4 *different models*,
    #    instead of four nearly identical Civics.
    print("Diverse top-4 for Make = 'Honda' (probing algorithm):")
    diverse = engine.search("Make = 'Honda'", k=4, algorithm="probe")
    print(diverse.to_table(["Make", "Model", "Color", "Year"]), "\n")

    print("Compare: the non-diverse Basic baseline returns the first four:")
    basic = engine.search("Make = 'Honda'", k=4, algorithm="basic")
    print(basic.to_table(["Make", "Model", "Color", "Year"]), "\n")

    # 4. Keyword predicates compose with scalar ones.
    print("Diverse top-3 for Description CONTAINS 'Low miles':")
    result = engine.search("Description CONTAINS 'Low miles'", k=3)
    print(result.to_table(["Make", "Model", "Color"]), "\n")

    # 5. Scored search: weighted disjunctions rank first, diversity breaks
    #    score ties.
    print("Scored top-5: Toyota [2] OR 'miles' [1] (one-pass algorithm):")
    scored = engine.search(
        "Make = 'Toyota' [2] OR Description CONTAINS 'miles' [1]",
        k=5,
        algorithm="onepass",
        scored=True,
    )
    print(scored.to_table(["Make", "Model", "Description"]), "\n")

    # 6. Execution statistics: the probing algorithm touched the index at
    #    most 2k times (Theorem 2).
    probe = engine.search("Year = 2007", k=5, algorithm="probe")
    print(
        f"Probing stats for Year = 2007, k=5: "
        f"{probe.stats['next_calls']} next() calls (bound: 10)."
    )


if __name__ == "__main__":
    main()
