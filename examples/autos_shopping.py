#!/usr/bin/env python3
"""Online car shopping at scale: the paper's motivating scenario.

Generates a Yahoo!-Autos-like inventory (Section V's setup, synthetic), then
walks through the searches from the paper's introduction: browsing Hondas,
drilling into 2007 Civics, hunting rare models, and relaxing an over-
constrained query.

Run:  python examples/autos_shopping.py [rows]
"""

import sys
import time

from repro import DiversityEngine
from repro.core.relaxation import relaxed_search
from repro.data.autos import autos_ordering, generate_autos, rare_models


def main() -> None:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    print(f"Generating {rows} synthetic car listings...")
    inventory = generate_autos(rows=rows, seed=42)

    started = time.perf_counter()
    engine = DiversityEngine.from_relation(inventory, autos_ordering())
    print(f"Index built in {time.perf_counter() - started:.2f}s "
          f"({engine.index!r})\n")

    # --- Scenario 1: browse a make, expect model variety -----------------
    print("User searches: Make = 'Honda' (5 results shown)")
    result = engine.search("Make = 'Honda'", k=5)
    print(result.to_table(["Make", "Model", "Color", "Year"]))
    models = {item["Model"] for item in result}
    print(f"-> {len(models)} distinct models on one page\n")

    # --- Scenario 2: drill into a model, expect color/year variety -------
    print("User refines: Make = 'Honda' AND Model = 'Civic'")
    result = engine.search("Make = 'Honda' AND Model = 'Civic'", k=5)
    print(result.to_table(["Model", "Color", "Year", "Description"]))
    colors = {item["Color"] for item in result}
    print(f"-> {len(colors)} distinct colors\n")

    # --- Scenario 3: rare listings still surface --------------------------
    rare = rare_models(inventory)
    print(f"Rare models in this inventory (the 'S2000 problem'): {rare}")
    result = engine.search("Make = 'Honda'", k=len(
        {row[1] for row in inventory if row[0] == 'Honda'}
    ))
    shown = {item["Model"] for item in result}
    surfaced = [model for model in rare if model in shown]
    print(f"-> rare models surfaced by a full diverse page: {surfaced}\n")

    # --- Scenario 4: keyword search with scoring -------------------------
    print("User searches: 'low miles' one-owner cars, Hondas preferred")
    result = engine.search(
        "Make = 'Honda' [2] OR Description CONTAINS 'low miles' [1] "
        "OR Description CONTAINS 'one owner' [1]",
        k=6,
        scored=True,
    )
    print(result.to_table(["Make", "Model", "Description"]))
    print()

    # --- Scenario 5: over-constrained query, automatic relaxation --------
    query = ("Make = 'Tesla' AND Color = 'Orange' AND "
             "Description CONTAINS 'tow package'")
    print(f"User over-constrains: {query}")
    outcome = relaxed_search(engine, query, k=5)
    print(f"strict matches: {outcome.strict_matches}; "
          f"relaxed: {outcome.relaxed}")
    print(outcome.result.to_table(["Make", "Model", "Color", "Description"]))
    print()

    # --- Timing: diverse vs naive ----------------------------------------
    for algorithm in ("naive", "onepass", "probe", "basic"):
        started = time.perf_counter()
        engine.search("Description CONTAINS 'low'", k=10, algorithm=algorithm)
        elapsed = (time.perf_counter() - started) * 1000
        print(f"{algorithm:>8}: {elapsed:7.2f} ms for k=10 over {rows} rows")


if __name__ == "__main__":
    main()
