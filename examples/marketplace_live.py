#!/usr/bin/env python3
"""A live auction marketplace: streaming ingest, pagination, persistence.

Shows the operational features around the core algorithms:

* a third vertical (auction listings) with its own diversity ordering;
* a :class:`DiverseView` that keeps a front-page diverse top-k current as
  listings stream in;
* diverse pagination (page 2 never repeats page 1);
* index snapshots (build once offline, reload instantly);
* the diversity report card comparing algorithms.

Run:  python examples/marketplace_live.py
"""

import tempfile
import time
from pathlib import Path

from repro import DiversityEngine, load_index, save_index
from repro.core.baselines import collect_all
from repro.core.diagnostics import compare_reports, diversity_report
from repro.core.incremental import DiverseView
from repro.core.pagination import DiversePaginator
from repro.data.auctions import auctions_ordering, auctions_schema, generate_auctions
from repro.index.merged import MergedList
from repro.storage.relation import Relation


def main() -> None:
    # --- Streaming ingest with a live front page -------------------------
    print("=== live ingest ===")
    stream = generate_auctions(rows=3000, seed=21)
    empty = Relation(auctions_schema(), name="Auctions")
    engine = DiversityEngine.from_relation(empty, auctions_ordering())
    front_page = DiverseView(engine, "Title CONTAINS 'rare'", k=6)
    for rid in range(len(stream)):
        front_page.offer_row(stream[rid])
    print(f"ingested {len(engine.relation)} listings; "
          f"{front_page.offered} matched 'rare'")
    for item in front_page.items():
        print(f"  {item['Category']:12s} {item['Subcategory']:10s} "
              f"{item['Condition']:11s} {item['Title']}")
    categories = {item["Category"] for item in front_page.items()}
    print(f"-> {len(categories)} categories on the front page\n")

    # --- Pagination -------------------------------------------------------
    print("=== pagination: 'buy it now' electronics, 4 per page ===")
    paginator = DiversePaginator(
        engine, "Category = 'Electronics' AND BuyFormat = 'buy it now'",
        page_size=4,
    )
    for number, page in enumerate(paginator.pages(limit=3), start=1):
        subs = [item["Subcategory"] for item in page]
        print(f"  page {number}: {subs}")
    print()

    # --- Persistence --------------------------------------------------------
    print("=== snapshot round trip ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "auctions.idx"
        started = time.perf_counter()
        save_index(engine.index, path)
        saved = time.perf_counter() - started
        started = time.perf_counter()
        restored = DiversityEngine(load_index(path))
        loaded = time.perf_counter() - started
        size_kb = path.stat().st_size / 1024
        print(f"saved {size_kb:.0f} KiB in {saved:.2f}s, reloaded in {loaded:.2f}s")
        same = restored.search("Category = 'Collectibles'", k=5).deweys == \
            engine.search("Category = 'Collectibles'", k=5).deweys
        print(f"restored engine answers identically: {same}\n")

    # --- Report card ---------------------------------------------------------
    print("=== diversity report card: probe vs basic, k=8, 'vintage' ===")
    query_text = "Title CONTAINS 'vintage'"
    merged = MergedList(engine.compile(query_text).query, engine.index)
    full = collect_all(merged)
    reports = {}
    for algorithm in ("probe", "basic"):
        result = engine.search(query_text, k=8, algorithm=algorithm)
        reports[algorithm] = diversity_report(
            result.deweys, full, engine.index.dewey
        )
    print(compare_reports(reports))
    print()
    print("probe in detail:")
    print(reports["probe"].render())


if __name__ == "__main__":
    main()
