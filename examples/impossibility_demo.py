#!/usr/bin/env python3
"""Theorem 1, executable: off-the-shelf IR scoring cannot deliver diversity.

Builds the exact Inverted-List Based IR System class the paper formalises
(per-list value-dependent scores, per-query weights, monotone aggregation),
then sweeps hand-tuned and random score assignments over the Figure 1
database.  Every single assignment fails to return a diverse result set for
at least one of the proof's three queries — and the assignments engineered
to pass the two single-list queries fail precisely on the conjunctive one,
exactly as the proof's counting argument predicts.

Run:  python examples/impossibility_demo.py
"""

from repro.data.paper_example import figure1_relation
from repro.ir.impossibility import (
    THEOREM_QUERIES,
    adversarial_assignments,
    demonstrate,
    find_violation,
)


def main() -> None:
    relation = figure1_relation()
    print("Database: Figure 1(a) —", len(relation), "car listings\n")

    print("Theorem 1's three queries:")
    for text, k, keys in THEOREM_QUERIES:
        print(f"  top-{k}: {text}   (lists: {[key[2] for key in keys]})")
    print()

    print("Checking 16 adversarial assignments (each places all four")
    print("Toyotas plus one chosen Civic at the top of both lists — the")
    print("best any assignment can do for the single-list queries):\n")
    for index, scores in enumerate(adversarial_assignments()):
        violation = find_violation(scores)
        print(
            f"  assignment {index:2d}: violates {violation.query_text!r} "
            f"({violation.reason})"
        )
    print()

    report = demonstrate(random_trials=300, seed=2026)
    print(f"Swept {report['assignments_checked']} assignments "
          f"(16 adversarial + 300 random):")
    print(f"  survivors (diverse on all three queries): {report['survivors']}")
    print("  violations per query:")
    for query, count in report["violations_per_query"].items():
        print(f"    {query:55s} {count}")
    print()
    if report["survivors"] == 0:
        print("No score assignment produced diverse results for all three")
        print("queries — the executable face of Theorem 1.")
    else:  # pragma: no cover - would contradict the theorem
        print("UNEXPECTED: some assignment survived; the theorem says this")
        print("cannot happen for exact diversity. Please file a bug!")


if __name__ == "__main__":
    main()
