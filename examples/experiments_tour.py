#!/usr/bin/env python3
"""Mini tour of the experiment harness: regenerate a paper figure from code.

The full reproduction runs via ``python -m repro.bench`` (see
EXPERIMENTS.md); this example shows the programmatic API at a small scale —
generate a figure, print its table, draw it in the terminal, and check the
paper's claims mechanically.

Run:  python examples/experiments_tour.py
"""

from repro.bench.figures import ablation_probe_counts, figure5
from repro.bench.plots import render_ascii_chart
from repro.bench.report import render_text, to_csv_string


def main() -> None:
    # Figure 5 at toy scale: response time vs number of listings.
    print("Generating Figure 5 (toy scale: up to 4000 listings)...\n")
    result = figure5(rows_grid=[1000, 2000, 4000], queries=15, k=10)
    print(render_text(result))
    print()
    print(render_ascii_chart(result))
    print()

    # Check the paper's claims on the fresh numbers.
    naive = result.series["UNaive"]
    probe = result.series["UProbe"]
    onepass = result.series["UOnePass"]
    growth = naive[-1] / naive[0]
    print(f"UNaive grew {growth:.1f}x from {result.x_values[0]} to "
          f"{result.x_values[-1]} listings.")
    print(f"UProbe stayed within "
          f"{max(probe) / max(min(probe), 1e-9):.1f}x of itself "
          f"(paper: insensitive to data size).")
    print(f"UOnePass stayed within "
          f"{max(onepass) / max(min(onepass), 1e-9):.1f}x of itself.")
    print()

    # Theorem 2, measured.
    print("Measuring probe counts against the 2k bound (Theorem 2)...\n")
    probes = ablation_probe_counts(k_grid=[1, 5, 10, 25], rows=3000, queries=20)
    print(render_text(probes))
    measured = probes.series["measured next() calls"]
    bound = probes.series["2k bound"]
    assert all(m <= b for m, b in zip(measured, bound))
    print("\nEvery measurement is within the bound.")
    print("\nCSV export of the probe ablation:\n")
    print(to_csv_string(probes))


if __name__ == "__main__":
    main()
