#!/usr/bin/env python3
"""Electronics store: a second vertical on the same engine.

The paper notes that "other applications such as online auction sites and
electronic stores also have similar requirements (e.g., showing diverse
auction listings, cameras, etc.)".  This example builds a camera catalog
with its own diversity ordering (Brand < Type < Resolution < Price band),
exercises weighted diversity (Section VII's extension: boost popular
brands), and shows catalog management with several relations.

Run:  python examples/camera_store.py
"""

import random

from repro import Catalog, DiversityEngine, Relation, Schema
from repro.core.weighted import WeightedDiversifier
from repro.data.paper_example import figure1_ordering, figure1_relation

BRANDS = {
    "Canon": ["EOS-R5", "EOS-R8", "PowerShot", "Ixus"],
    "Nikon": ["Z6", "Z9", "Coolpix"],
    "Sony": ["A7IV", "A6700", "RX100", "ZV1"],
    "Fujifilm": ["XT5", "X100V"],
    "Leica": ["Q3"],
}
TYPES = ["mirrorless", "compact", "dslr"]
RESOLUTIONS = [12, 20, 24, 33, 45, 61]
FEATURES = [
    "weather sealed", "in body stabilisation", "4k video", "8k video",
    "flip screen", "dual card slots", "great autofocus", "compact body",
]


def build_camera_relation(rows: int = 4000, seed: int = 11) -> Relation:
    rng = random.Random(seed)
    schema = Schema.of(
        Brand="categorical",
        Model="categorical",
        Type="categorical",
        Megapixels="numeric",
        PriceBand="categorical",
        Notes="text",
    )
    relation = Relation(schema, name="Cameras")
    brands = list(BRANDS)
    weights = [5, 4, 4, 2, 1]
    for _ in range(rows):
        brand = rng.choices(brands, weights=weights)[0]
        model = rng.choice(BRANDS[brand])
        kind = rng.choice(TYPES)
        resolution = rng.choice(RESOLUTIONS)
        price = rng.choices(["budget", "mid", "premium"], weights=[5, 3, 2])[0]
        notes = ", ".join(rng.sample(FEATURES, 3))
        relation.insert((brand, model, kind, resolution, price, notes))
    return relation


def main() -> None:
    cameras = build_camera_relation()
    ordering = ["Brand", "Model", "Type", "PriceBand", "Megapixels", "Notes"]

    # A catalog can host many verticals, each with its own ordering.
    catalog = Catalog()
    catalog.register(cameras, ordering=ordering)
    catalog.register(figure1_relation(), ordering=figure1_ordering().attributes)
    print(f"Catalog hosts: {sorted(catalog)}\n")

    engine = DiversityEngine.from_relation(
        catalog.relation("Cameras"), catalog.default_ordering("Cameras")
    )

    print("Diverse top-5 cameras with '4k video':")
    result = engine.search("Notes CONTAINS '4k video'", k=5)
    print(result.to_table(["Brand", "Model", "Type", "PriceBand"]))
    brands = {item["Brand"] for item in result}
    print(f"-> {len(brands)} distinct brands\n")

    print("Premium mirrorless, scored by feature matches:")
    result = engine.search(
        "Type = 'mirrorless' [2] OR Notes CONTAINS 'weather sealed' [1] "
        "OR Notes CONTAINS 'dual card slots' [1]",
        k=6,
        scored=True,
    )
    print(result.to_table(["Brand", "Model", "Type", "Notes"]))
    print()

    # Weighted diversity (Section VII): merchandising wants popular brands
    # overrepresented 3:1 against boutique ones.
    print("Weighted diversity: Canon & Sony boosted 3x:")
    merged = engine.compile("Notes CONTAINS 'flip screen'")
    matches = []
    from repro.core.dewey import successor

    current = merged.first()
    while current is not None:
        matches.append(current)
        current = merged.next(successor(current))
    diversifier = WeightedDiversifier(
        engine.index.dewey,
        {("Brand", "Canon"): 3.0, ("Brand", "Sony"): 3.0},
    )
    chosen = diversifier.select(matches, 8)
    per_brand = {}
    for dewey in chosen:
        brand = engine.index.dewey.values_of(dewey)[0]
        per_brand[brand] = per_brand.get(brand, 0) + 1
    print(f"8 slots -> {per_brand}")
    print("(uniform diversity would give every brand at most 2)")


if __name__ == "__main__":
    main()
