"""Root pytest plugin: a per-test timeout fallback.

CI installs the real ``pytest-timeout`` plugin (which honours the
``timeout`` ini option set in pyproject.toml).  Local environments may not
have it; this shim provides the same per-test cap via ``SIGALRM`` so a
hung fan-out (a deadlocked pool, a retry loop that lost its deadline)
fails the one test instead of wedging the whole run.  It deactivates
itself entirely when the real plugin is importable, and degrades to a
no-op on platforms without ``SIGALRM`` or off the main thread.
"""

from __future__ import annotations

import signal
import threading

import pytest

try:
    import pytest_timeout  # noqa: F401

    HAVE_PYTEST_TIMEOUT = True
except ImportError:
    HAVE_PYTEST_TIMEOUT = False


def pytest_addoption(parser):
    if HAVE_PYTEST_TIMEOUT:
        return  # the real plugin registers (and enforces) the option
    parser.addini("timeout", "per-test timeout in seconds (fallback shim)",
                  default="0")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): override the per-test timeout for one test",
    )


def _timeout_for(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is not None and marker.args:
        return float(marker.args[0])
    try:
        return float(item.config.getini("timeout") or 0)
    except (TypeError, ValueError):
        return 0.0


@pytest.hookimpl(wrapper=True)
def pytest_runtest_call(item):
    seconds = 0.0 if HAVE_PYTEST_TIMEOUT else _timeout_for(item)
    usable = (
        seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        return (yield)

    def on_alarm(signum, frame):
        raise TimeoutError(
            f"test exceeded the {seconds:g}s fallback timeout"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        return (yield)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
