"""Serving-layer cache benchmark: cold vs. warm vs. skewed traffic.

Beyond the paper (which computes every diverse top-k from scratch): this
measures what the ``repro.serving`` caches buy on a skewed repeated-query
workload — the regime of real shopping traffic.  Three measurements:

* **cold** — every query executed from scratch (caches disabled; the
  baseline every other figure uses, and the state of a cache that has
  never seen the workload),
* **fill** — a fresh :class:`ServingEngine`, first pass over the workload
  (each distinct query misses once; repeats already hit),
* **warm** — the same engine, same workload again (pure hits).

Run under pytest (``pytest benchmarks/bench_serving_cache.py``) for the
pytest-benchmark comparison table, or directly
(``python benchmarks/bench_serving_cache.py``) to print and persist the
cold/warm/speedup summary consumed by ``BENCH_serving_cache.json``.
Scales follow ``REPRO_BENCH_ROWS`` / ``REPRO_BENCH_QUERIES`` like every
other benchmark.
"""

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import env_int, run_serving_workload, run_workload
from repro.core.engine import DiversityEngine
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex
from repro.serving import ServingEngine

# The acceptance workload: Zipf s=1.0, 500 queries over 50 distinct strings.
DEFAULT_DISTINCT = 50
DEFAULT_ZIPF_S = 1.0
DEFAULT_WORKLOAD_QUERIES = 500
K = 10
TAG = "UProbe"

_CACHE = {}


def _setup(rows, queries=DEFAULT_WORKLOAD_QUERIES, distinct=DEFAULT_DISTINCT,
           zipf_s=DEFAULT_ZIPF_S):
    key = (rows, queries, distinct, zipf_s)
    if key not in _CACHE:
        relation = generate_autos(AutosSpec(rows=rows, seed=42))
        index = InvertedIndex.build(relation, autos_ordering())
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(
                queries=queries,
                predicates=2,   # two predicates keep the 50-query pool distinct
                selectivity=0.5,
                distinct=distinct,
                zipf_s=zipf_s,
                seed=1,
            ),
        ).materialise()
        _CACHE[key] = (index, workload)
    return _CACHE[key]


def measure(rows, queries=DEFAULT_WORKLOAD_QUERIES, distinct=DEFAULT_DISTINCT,
            zipf_s=DEFAULT_ZIPF_S):
    """One full cold/warm/uncached measurement; returns a JSON-able dict."""
    index, workload = _setup(rows, queries, distinct, zipf_s)

    # Collect before each timed phase so leftover garbage from earlier
    # benchmarks can't bill its pauses to these (short) measurements.
    gc.collect()
    cold = run_workload(index, workload, K, TAG)

    serving = ServingEngine(DiversityEngine(index))
    gc.collect()
    fill = run_serving_workload(serving, workload, K, TAG)
    gc.collect()
    warm = run_serving_workload(serving, workload, K, TAG)

    stats = serving.stats
    return {
        "benchmark": "serving_cache",
        "algorithm": TAG,
        "rows": rows,
        "queries": queries,
        "distinct": distinct,
        "zipf_s": zipf_s,
        "k": K,
        "python": platform.python_version(),
        "cold_seconds": round(cold.total_seconds, 6),
        "fill_seconds": round(fill.total_seconds, 6),
        "warm_seconds": round(warm.total_seconds, 6),
        "warm_speedup_vs_cold": round(cold.total_seconds / warm.total_seconds, 2)
        if warm.total_seconds > 0 else float("inf"),
        "warm_speedup_vs_fill": round(fill.total_seconds / warm.total_seconds, 2)
        if warm.total_seconds > 0 else float("inf"),
        "fill_speedup_vs_cold": round(cold.total_seconds / fill.total_seconds, 2)
        if fill.total_seconds > 0 else float("inf"),
        "fill_hit_ratio": round(fill.cache_hit_ratio, 4),
        "warm_hit_ratio": round(warm.cache_hit_ratio, 4),
        "fill_hits": fill.cache_hits,
        "fill_misses": fill.cache_misses,
        "warm_hits": warm.cache_hits,
        "warm_misses": warm.cache_misses,
        "warm_next_calls": warm.next_calls,
        "totals": {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "epoch_invalidations": stats.epoch_invalidations,
            "plan_hits": stats.plan_hits,
            "plan_misses": stats.plan_misses,
            "plan_revalidations": stats.plan_revalidations,
        },
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points (same shape as the figure benchmarks)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", 5000)

    def test_serving_cold(benchmark):
        index, workload = _setup(BENCH_ROWS)
        benchmark.group = f"serving rows={BENCH_ROWS}"
        timing = benchmark.pedantic(
            run_workload, args=(index, workload, K, TAG), rounds=2, iterations=1
        )
        assert timing.results_returned >= 0

    def test_serving_fill(benchmark):
        index, workload = _setup(BENCH_ROWS)
        benchmark.group = f"serving rows={BENCH_ROWS}"

        def fill_run():
            serving = ServingEngine(DiversityEngine(index))
            return run_serving_workload(serving, workload, K, TAG)

        timing = benchmark.pedantic(fill_run, rounds=2, iterations=1)
        assert timing.cache_misses > 0

    def test_serving_warm(benchmark):
        index, workload = _setup(BENCH_ROWS)
        benchmark.group = f"serving rows={BENCH_ROWS}"
        serving = ServingEngine(DiversityEngine(index))
        run_serving_workload(serving, workload, K, TAG)  # fill the caches

        def warm_run():
            return run_serving_workload(serving, workload, K, TAG)

        timing = benchmark.pedantic(warm_run, rounds=2, iterations=1)
        assert timing.cache_hits == len(workload)

    def test_warm_beats_cold_5x():
        """The PR's acceptance criterion, asserted at benchmark scale.

        Best-of-3: a single measurement of a millisecond-scale warm pass
        is at the mercy of scheduler/GC noise in a shared CI runner.
        """
        best = 0.0
        for _ in range(3):
            best = max(best, measure(BENCH_ROWS)["warm_speedup_vs_cold"])
            if best >= 5.0:
                break
        assert best >= 5.0, f"warm only {best}x faster than cold"


# ----------------------------------------------------------------------
# Script entry point: print + persist the baseline JSON
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=env_int("REPRO_BENCH_ROWS", 5000))
    parser.add_argument("--queries", type=int, default=DEFAULT_WORKLOAD_QUERIES)
    parser.add_argument("--distinct", type=int, default=DEFAULT_DISTINCT)
    parser.add_argument("--zipf", type=float, default=DEFAULT_ZIPF_S)
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_serving_cache.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows, args.queries, args.distinct, args.zipf)
    elapsed = time.perf_counter() - started

    print(
        f"serving cache @ {args.rows} rows, {args.queries} queries "
        f"over {args.distinct} distinct (zipf s={args.zipf}):"
    )
    print(f"  cold (no cache): {report['cold_seconds'] * 1000:8.1f} ms")
    print(
        f"  fill (1st pass): {report['fill_seconds'] * 1000:8.1f} ms "
        f"(hit ratio {report['fill_hit_ratio']:.2%})"
    )
    print(
        f"  warm (2nd pass): {report['warm_seconds'] * 1000:8.1f} ms "
        f"(hit ratio {report['warm_hit_ratio']:.2%})"
    )
    print(
        f"  speedup: warm {report['warm_speedup_vs_cold']}x vs cold, "
        f"fill {report['fill_speedup_vs_cold']}x vs cold "
        f"[measured in {elapsed:.1f}s]"
    )
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
