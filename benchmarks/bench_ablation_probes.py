"""Ablation: measured probe counts vs the Theorem 2 bound.

Benchmarks UProbe across k and asserts, on every workload query, that the
number of ``next()`` calls stays within 2k — the paper's headline efficiency
guarantee for the probing algorithm.
"""

import pytest

from repro.core.probing import probe_unscored
from repro.index.merged import MergedList

K_GRID = [1, 10, 50, 100]


@pytest.mark.parametrize("k", K_GRID)
def test_probe_counts(benchmark, autos_index, unscored_workload, k):
    benchmark.group = f"abl-probes k={k}"

    def run():
        total = 0
        for query in unscored_workload:
            merged = MergedList(query, autos_index)
            probe_unscored(merged, k)
            assert merged.next_calls <= 2 * k, (
                f"Theorem 2 violated: {merged.next_calls} > {2 * k} for "
                f"{query.describe()}"
            )
            total += merged.next_calls
        return total

    total = benchmark.pedantic(run, rounds=2, iterations=1)
    assert total <= 2 * k * len(unscored_workload)
