"""Durability benchmark: what crash safety costs and what recovery saves.

Two questions, answered with numbers:

* **WAL append overhead** — every insert now pays a length-prefixed,
  CRC-checksummed, JSON-framed log append before the in-memory mutation.
  Each cell times the same insert stream on a bare index and on durable
  stores at ``fsync_every`` 1 (every record durable before ack), 8
  (batched), and 0 (OS-buffered, sync on close), reporting per-insert
  microseconds.  The fsync knob is the whole story: the framing itself is
  cheap, the disk barrier is not.
* **Recovery vs cold rebuild** — reopening a data directory (validate
  snapshot digest, replay the WAL tail, reopen the log) is compared
  against re-ingesting the source CSV and rebuilding from scratch.  In
  this pure-python engine the two are in the same ballpark — the point
  of recovery is not raw speed but what the cold path *cannot* give:
  the exact rid→Dewey assignment, mutation epoch, and tombstones the
  crashed process had acknowledged, which is what keeps epoch-keyed
  caches valid across the restart.

Run under pytest (``pytest benchmarks/bench_durability.py``) or directly
(``python benchmarks/bench_durability.py --out BENCH_durability.json``).
Scale follows ``REPRO_BENCH_ROWS``.
"""

import argparse
import gc
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import env_int
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.durability import create_store, recover
from repro.index.inverted import InvertedIndex
from repro.storage.csvio import read_csv, write_csv

DEFAULT_ROWS = 5000
INSERT_FRACTION = 0.10     # this share of the relation arrives as inserts
FSYNC_MODES = (1, 8, 0)    # every record / batched / explicit-only

_CACHE = {}


def _insert_stream(rows):
    """The rows replayed as live inserts: a held-back tail of the dataset."""
    if rows not in _CACHE:
        inserts = max(1, int(rows * INSERT_FRACTION))
        full = generate_autos(AutosSpec(rows=rows + inserts, seed=42))
        _CACHE[rows] = [tuple(row) for row in list(full)[rows:]]
    return _CACHE[rows]


def _fresh_index(rows):
    relation = generate_autos(AutosSpec(rows=rows, seed=42))
    return relation, InvertedIndex.build(relation, autos_ordering())


def _time_inserts(target, relation, rows_to_insert):
    gc.collect()
    started = time.perf_counter()
    for row in rows_to_insert:
        target.insert(relation.insert(row))
    return time.perf_counter() - started


def measure_wal_overhead(rows, data_root):
    """Per-insert cost: bare index vs durable store per fsync mode."""
    tail = _insert_stream(rows)
    relation, index = _fresh_index(rows)
    bare_seconds = _time_inserts(index, relation, tail)
    per_bare_us = bare_seconds / len(tail) * 1e6

    cells = [
        {
            "mode": "bare (no durability)",
            "fsync_every": None,
            "seconds": round(bare_seconds, 6),
            "per_insert_us": round(per_bare_us, 2),
            "overhead_pct": 0.0,
        }
    ]
    for fsync_every in FSYNC_MODES:
        relation, index = _fresh_index(rows)
        store = create_store(
            index, data_root / f"wal-fsync-{fsync_every}",
            fsync_every=fsync_every,
        )
        seconds = _time_inserts(store, relation, tail)
        store.close()
        per_us = seconds / len(tail) * 1e6
        cells.append(
            {
                "mode": f"durable fsync_every={fsync_every}",
                "fsync_every": fsync_every,
                "seconds": round(seconds, 6),
                "per_insert_us": round(per_us, 2),
                "overhead_pct": round(
                    (seconds - bare_seconds) / bare_seconds * 100.0, 1
                ) if bare_seconds > 0 else 0.0,
            }
        )
    return len(tail), cells


def measure_recovery(rows, data_root):
    """Snapshot + WAL-replay recovery vs cold CSV re-ingest + rebuild."""
    tail = _insert_stream(rows)
    relation, index = _fresh_index(rows)
    data_dir = data_root / "recovery-store"
    store = create_store(index, data_dir, fsync_every=0)
    for row in tail:
        store.insert(relation.insert(row))

    gc.collect()
    started = time.perf_counter()
    store.snapshot()
    snapshot_seconds = time.perf_counter() - started
    store.close()

    gc.collect()
    started = time.perf_counter()
    recovered = recover(data_dir)
    recovery_seconds = time.perf_counter() - started
    assert recovered.epoch == store.epoch
    assert len(recovered.relation) == len(relation)
    recovered.close()

    csv_path = data_root / "cold.csv"
    write_csv(relation, csv_path)
    gc.collect()
    started = time.perf_counter()
    reread = read_csv(csv_path)
    InvertedIndex.build(reread, autos_ordering())
    cold_seconds = time.perf_counter() - started

    return {
        "rows": len(relation),
        "snapshot_seconds": round(snapshot_seconds, 6),
        "recovery_seconds": round(recovery_seconds, 6),
        "cold_reingest_seconds": round(cold_seconds, 6),
        "recovery_speedup_vs_cold": round(
            cold_seconds / recovery_seconds, 2
        ) if recovery_seconds > 0 else None,
    }


def measure(rows):
    """Time every cell; returns a JSON-able dict."""
    root = Path(tempfile.mkdtemp(prefix="repro-bench-durability-"))
    try:
        inserts, wal_cells = measure_wal_overhead(rows, root)
        recovery_cell = measure_recovery(rows, root)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "benchmark": "durability",
        "rows": rows,
        "inserts_timed": inserts,
        "python": platform.python_version(),
        "wal_append_overhead": wal_cells,
        "recovery": recovery_cell,
    }


# ----------------------------------------------------------------------
# pytest entry points (same shape as the other benchmarks)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", DEFAULT_ROWS)

    def test_wal_overhead_cells_cover_all_modes(tmp_path):
        inserts, cells = measure_wal_overhead(BENCH_ROWS, tmp_path)
        assert inserts > 0
        assert [cell["fsync_every"] for cell in cells] == [None, *FSYNC_MODES]
        # Unsynced logging should not dominate the insert itself.
        unsynced = next(c for c in cells if c["fsync_every"] == 0)
        assert unsynced["seconds"] > 0

    def test_recovery_stays_within_cold_reingest_ballpark(tmp_path):
        cell = measure_recovery(BENCH_ROWS, tmp_path)
        assert cell["recovery_seconds"] > 0
        # Correctness (epoch + row count) is asserted inside; the speed
        # gate only applies at meaningful scale (tiny runs are all noise).
        if BENCH_ROWS >= 2000:
            assert cell["recovery_seconds"] < cell["cold_reingest_seconds"] * 2


# ----------------------------------------------------------------------
# Script entry point: print + persist the report
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows", type=int, default=env_int("REPRO_BENCH_ROWS", DEFAULT_ROWS)
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_durability.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows)
    elapsed = time.perf_counter() - started

    print(
        f"durability @ {args.rows} rows, "
        f"{report['inserts_timed']} timed inserts:"
    )
    print("  WAL append overhead:")
    for cell in report["wal_append_overhead"]:
        print(
            f"    {cell['mode']:<26} {cell['per_insert_us']:>9.1f} us/insert"
            f"  ({cell['overhead_pct']:+.1f}%)"
        )
    recovery = report["recovery"]
    print("  restart paths:")
    print(f"    snapshot write        {recovery['snapshot_seconds']:.3f}s")
    print(f"    recover (snapshot+WAL) {recovery['recovery_seconds']:.3f}s")
    print(f"    cold CSV re-ingest    {recovery['cold_reingest_seconds']:.3f}s")
    print(
        f"    recovery speedup vs cold: "
        f"{recovery['recovery_speedup_vs_cold']}x"
    )
    print(f"  [measured in {elapsed:.1f}s]")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
