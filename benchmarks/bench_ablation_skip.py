"""Ablation: the one-pass skip-ahead rule on vs off.

With skipping disabled the scan still terminates early when nothing can
improve the kept set, but steps item by item instead of jumping branches —
quantifying DESIGN.md's "key savings" claim for Algorithm 1.
"""

import pytest

from repro.bench.harness import run_workload

K_GRID = [1, 10, 50]


@pytest.mark.parametrize("k", K_GRID)
@pytest.mark.parametrize("variant", ["UOnePass", "UOnePassNoSkip"])
def test_skip_ablation(benchmark, autos_index, unscored_workload, variant, k):
    benchmark.group = f"abl-skip k={k}"
    benchmark.pedantic(
        run_workload, args=(autos_index, unscored_workload, k, variant),
        rounds=2, iterations=1,
    )
