"""Figure 7: response time vs query selectivity (unscored).

Paper shape: UNaive degrades sharply as selectivity rises (it materialises
every match); UOnePass and UProbe stay stable.
"""

import pytest

from repro.bench.harness import run_workload
from repro.data.workload import WorkloadGenerator, WorkloadSpec

from conftest import BENCH_QUERIES

BUCKETS = [0.1, 0.5, 0.9]
ALGORITHMS = ["UNaive", "UBasic", "UOnePass", "UProbe"]

_CACHE = {}


def _workload(relation, bucket):
    if bucket not in _CACHE:
        _CACHE[bucket] = WorkloadGenerator(
            relation,
            WorkloadSpec(
                queries=BENCH_QUERIES, predicates=1, selectivity=bucket, seed=3
            ),
        ).materialise()
    return _CACHE[bucket]


@pytest.mark.parametrize("bucket", BUCKETS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig7(benchmark, autos_relation, autos_index, algorithm, bucket):
    workload = _workload(autos_relation, bucket)
    benchmark.group = f"fig7 selectivity~{bucket}"
    benchmark.pedantic(
        run_workload,
        args=(autos_index, workload, 10, algorithm),
        rounds=2,
        iterations=1,
    )
