"""Posting-backend benchmark: the time/space trade-off, scored as a gate.

One table over the three posting backends (sorted-array, B+-tree,
compressed), each measured on the same relation and workload:

* **build seconds** — cold ``InvertedIndex.build`` wall-clock;
* **bytes / posting** — resident posting storage from ``memory_stats()``
  (the compressed backend stores delta-encoded Dewey components in flat
  buffers, so this is where it earns its keep);
* **UOnePass / UProbe workload seconds** — min-of-``REPEATS`` full
  workload runs for the paper's two index-driven algorithms, with the
  repeats *interleaved* across backends (round-robin) so slow drift in
  machine load lands on every backend instead of biasing whichever one
  ran last;
* **paper-bound counters** — the same workload replayed through a
  :class:`DiversityEngine` under a private metrics registry, checking
  ``repro_probe_bound_violations_total`` and
  ``repro_onepass_scan_violations_total`` stay 0 on every backend.

The report's ``criteria`` section encodes the acceptance gate: compressed
must cost at most half the array backend's bytes per posting while staying
within 1.25x of the fastest backend's query wall-clock.

Run under pytest (``pytest benchmarks/bench_postings.py``) or directly
(``python benchmarks/bench_postings.py --rows 100000 --queries 100
--out BENCH_postings.json``).  Scale follows ``REPRO_BENCH_ROWS`` /
``REPRO_BENCH_QUERIES``.
"""

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import ALGORITHM_TAGS, env_int, run_workload
from repro.core.engine import DiversityEngine
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex
from repro.index.postings import BACKENDS
from repro.observability import MetricsRegistry

DEFAULT_ROWS = 5000
DEFAULT_QUERIES = 10
ALGORITHMS = ("UOnePass", "UProbe")
REPEATS = 5
K = 10

#: The acceptance gate the report is scored against.
MEMORY_RATIO_FLOOR = 2.0      # array bytes/posting ÷ compressed, at least
WALLCLOCK_RATIO_CEIL = 1.25   # compressed seconds ÷ best backend, at most

VIOLATION_COUNTERS = (
    "repro_probe_bound_violations_total",
    "repro_onepass_scan_violations_total",
)


def _workload(relation, queries):
    return WorkloadGenerator(
        relation,
        WorkloadSpec(queries=queries, predicates=2, selectivity=0.5, seed=1),
    ).materialise()


def _count_violations(index, workload):
    """Replay the workload through an engine with a private registry and
    read back the paper-bound violation counters (absent == 0)."""
    registry = MetricsRegistry(enabled=True)
    engine = DiversityEngine(index, registry=registry)
    for tag in ALGORITHMS:
        name, scored = ALGORITHM_TAGS[tag]
        for query in workload:
            engine.execute(engine.prepare(query, scored), K, name, scored)
    return {
        counter: int(registry.value(counter)) for counter in VIOLATION_COUNTERS
    }


def measure_backend(backend, relation, workload):
    """One backend's untimed row: build time, memory, paper bounds.

    Query timing happens separately in :func:`measure`, interleaved
    across backends, so a cell here carries an empty
    ``workload_seconds`` to be filled in by the caller.
    """
    gc.collect()
    started = time.perf_counter()
    index = InvertedIndex.build(relation, autos_ordering(), backend=backend)
    build_seconds = time.perf_counter() - started

    stats = index.memory_stats()
    cell = {
        "backend": backend,
        "build_seconds": round(build_seconds, 4),
        "postings": stats["postings"],
        "postings_bytes": stats["bytes"],
        "bytes_per_posting": round(stats["bytes_per_posting"], 2),
        "workload_seconds": {},
        "violations": _count_violations(index, workload),
    }
    return index, cell


def measure(rows, queries):
    """Every backend on one relation + workload; returns a JSON-able dict."""
    relation = generate_autos(AutosSpec(rows=rows, seed=42))
    workload = _workload(relation, queries)

    indexes = {}
    cells = []
    for backend in BACKENDS:
        index, cell = measure_backend(backend, relation, workload)
        indexes[backend] = index
        cells.append(cell)

    # Round-robin the timing repeats so machine-load drift hits every
    # backend equally; keep the min per (backend, algorithm).
    timings = {}
    for _ in range(REPEATS):
        for cell in cells:
            for tag in ALGORITHMS:
                elapsed = run_workload(
                    indexes[cell["backend"]], workload, K, tag
                ).total_seconds
                slot = (cell["backend"], tag)
                if slot not in timings or elapsed < timings[slot]:
                    timings[slot] = elapsed
    for cell in cells:
        for tag in ALGORITHMS:
            cell["workload_seconds"][tag] = round(
                timings[(cell["backend"], tag)], 6
            )

    by_backend = {cell["backend"]: cell for cell in cells}

    array_bpp = by_backend["array"]["bytes_per_posting"]
    compressed = by_backend["compressed"]
    memory_ratio = (
        array_bpp / compressed["bytes_per_posting"]
        if compressed["bytes_per_posting"] > 0 else None
    )
    wallclock_ratios = {}
    for tag in ALGORITHMS:
        best = min(cell["workload_seconds"][tag] for cell in cells)
        wallclock_ratios[tag] = round(
            compressed["workload_seconds"][tag] / best, 3
        ) if best > 0 else None
    violations = sum(
        sum(cell["violations"].values()) for cell in cells
    )

    return {
        "benchmark": "postings",
        "rows": rows,
        "queries": queries,
        "k": K,
        "repeats": REPEATS,
        "python": platform.python_version(),
        "backends": cells,
        "criteria": {
            "memory_ratio_vs_array": round(memory_ratio, 2),
            "memory_ratio_floor": MEMORY_RATIO_FLOOR,
            "wallclock_ratio_vs_best": wallclock_ratios,
            "wallclock_ratio_ceil": WALLCLOCK_RATIO_CEIL,
            "bound_violations": violations,
        },
    }


# ----------------------------------------------------------------------
# pytest entry points (same shape as the other benchmarks)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", DEFAULT_ROWS)
    BENCH_QUERIES = env_int("REPRO_BENCH_QUERIES", DEFAULT_QUERIES)

    @pytest.fixture(scope="module")
    def postings_report():
        return measure(BENCH_ROWS, BENCH_QUERIES)

    def test_compressed_memory_wins(postings_report):
        criteria = postings_report["criteria"]
        assert criteria["memory_ratio_vs_array"] >= MEMORY_RATIO_FLOOR

    def test_bound_counters_stay_zero(postings_report):
        for cell in postings_report["backends"]:
            assert cell["violations"] == {c: 0 for c in VIOLATION_COUNTERS}

    def test_compressed_wallclock_competitive(postings_report):
        # Timing ratios are all noise at smoke scale; the gate applies at
        # the paper's full data size (the CI artifact run).
        for tag, ratio in (
            postings_report["criteria"]["wallclock_ratio_vs_best"].items()
        ):
            assert ratio is not None and ratio >= 1.0
            if BENCH_ROWS >= 50_000:
                assert ratio <= WALLCLOCK_RATIO_CEIL, tag


# ----------------------------------------------------------------------
# Script entry point: print + persist the report
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows", type=int, default=env_int("REPRO_BENCH_ROWS", DEFAULT_ROWS)
    )
    parser.add_argument(
        "--queries", type=int,
        default=env_int("REPRO_BENCH_QUERIES", DEFAULT_QUERIES),
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_postings.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows, args.queries)
    elapsed = time.perf_counter() - started

    print(f"postings @ {args.rows} rows, {args.queries} queries, k={K}:")
    print(
        f"  {'backend':<12} {'build s':>8} {'B/posting':>10} "
        + " ".join(f"{tag + ' s':>12}" for tag in ALGORITHMS)
    )
    for cell in report["backends"]:
        print(
            f"  {cell['backend']:<12} {cell['build_seconds']:>8.3f} "
            f"{cell['bytes_per_posting']:>10.1f} "
            + " ".join(
                f"{cell['workload_seconds'][tag]:>12.4f}"
                for tag in ALGORITHMS
            )
        )
    criteria = report["criteria"]
    print(
        f"  memory ratio vs array: {criteria['memory_ratio_vs_array']}x "
        f"(floor {MEMORY_RATIO_FLOOR}x)"
    )
    for tag, ratio in criteria["wallclock_ratio_vs_best"].items():
        print(
            f"  {tag} wall-clock vs best: {ratio}x "
            f"(ceiling {WALLCLOCK_RATIO_CEIL}x)"
        )
    print(f"  bound violations: {criteria['bound_violations']}")
    print(f"  [measured in {elapsed:.1f}s]")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
