"""Observability overhead benchmark: enabled vs. disabled registry.

The metrics layer promises to be cheap enough to leave on: per query it
costs two clock reads and one histogram observe (``repro_query_ms``) plus
a handful of counter bumps in ``record_query_metrics`` — and *nothing*
per index probe.  This benchmark prices that promise on the serving shape the
PR 1 cache benchmark uses (autos relation, generated workload, uncached
``DiversityEngine.search`` so every query takes the full execute path):

* **disabled** — the workload under a ``MetricsRegistry(enabled=False)``
  (every instrument call is a no-op through ``_NullInstrument``),
* **enabled** — the same workload under a live registry.

Timing uses ABBA blocks (disabled, enabled, enabled, disabled) and takes
the **median of per-block ratios**: on this host the effective CPU speed
wobbles ~25% on multi-second timescales (virtualised frequency states —
identical runs span 140–195ms with zero steal time), so any
best-of/sum-of statistic is dominated by which frequency state each side
happened to sample.  ABBA cancels linear drift within a block, and the
median across blocks discards the blocks a state *switch* poisoned.  The
acceptance criterion (asserted under pytest) is an enabled-vs-disabled
overhead of at most 5%.

Run directly (``python benchmarks/bench_observability.py --out
BENCH_observability.json``) to print and persist the summary, or under
pytest for the acceptance check.  Scales follow ``REPRO_BENCH_ROWS`` /
``REPRO_BENCH_QUERIES`` like every other benchmark.
"""

import argparse
import gc
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import env_int
from repro.core.engine import DiversityEngine
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex
from repro.observability import MetricsRegistry, use_registry

#: Same scale as the PR 1 serving-cache benchmark: 5000-row autos
#: relation, Zipf-skewed generated workload.
DEFAULT_ROWS = 5000
DEFAULT_WORKLOAD_QUERIES = 300
K = 10
ALGORITHM = "probe"

_CACHE = {}


def _setup(rows, queries):
    key = (rows, queries)
    if key not in _CACHE:
        relation = generate_autos(AutosSpec(rows=rows, seed=42))
        index = InvertedIndex.build(relation, autos_ordering())
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=queries, predicates=2, selectivity=0.5,
                         distinct=50, zipf_s=1.0, seed=1),
        ).materialise()
        _CACHE[key] = (index, workload)
    return _CACHE[key]


def _run_workload(index, workload, registry) -> float:
    """One timed pass through the engine path under ``registry``."""
    with use_registry(registry):
        engine = DiversityEngine(index)
        start = time.perf_counter()
        for query in workload:
            engine.search(query, K, algorithm=ALGORITHM)
        return time.perf_counter() - start


def measure(rows=DEFAULT_ROWS, queries=DEFAULT_WORKLOAD_QUERIES, blocks=24):
    """Median-of-ABBA-blocks A/B measurement; returns a JSON-able dict.

    Each block times disabled, enabled, enabled, disabled passes
    back-to-back and yields one overhead ratio ``(B1+B2)/(A1+A2)``; the
    reported overhead is the median ratio across ``blocks`` blocks.
    """
    index, workload = _setup(rows, queries)
    # One untimed pass per mode warms allocator/caches alike.
    _run_workload(index, workload, MetricsRegistry(enabled=False))
    _run_workload(index, workload, MetricsRegistry())

    ratios = []
    disabled_samples = []
    enabled_samples = []
    for _ in range(blocks):
        gc.collect()
        a1 = _run_workload(index, workload, MetricsRegistry(enabled=False))
        b1 = _run_workload(index, workload, MetricsRegistry())
        b2 = _run_workload(index, workload, MetricsRegistry())
        a2 = _run_workload(index, workload, MetricsRegistry(enabled=False))
        disabled_samples += [a1, a2]
        enabled_samples += [b1, b2]
        ratios.append((b1 + b2) / (a1 + a2))

    # A final enabled pass, kept, to report what the registry exports.
    registry = MetricsRegistry()
    _run_workload(index, workload, registry)
    snapshot = registry.snapshot()

    disabled_median = statistics.median(disabled_samples)
    enabled_median = statistics.median(enabled_samples)
    overhead = (statistics.median(ratios) - 1.0) * 100.0
    return {
        "benchmark": "observability_overhead",
        "algorithm": ALGORITHM,
        "rows": rows,
        "queries": queries,
        "k": K,
        "blocks": blocks,
        "python": platform.python_version(),
        "disabled_seconds": round(disabled_median, 6),
        "enabled_seconds": round(enabled_median, 6),
        "overhead_percent": round(overhead, 3),
        "per_query_overhead_us": round(
            1e6 * (overhead / 100.0) * disabled_median / queries, 3),
        "exported_counters": len(snapshot["counters"]),
        "exported_gauges": len(snapshot["gauges"]),
        "exported_histograms": len(snapshot["histograms"]),
        "spans_recorded": len(snapshot["spans"]),
        "probe_bound_violations": next(
            (c["value"] for c in snapshot["counters"]
             if c["name"] == "repro_probe_bound_violations_total"), 0.0),
    }


# ----------------------------------------------------------------------
# pytest entry point: the acceptance criterion
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", DEFAULT_ROWS)
    BENCH_QUERIES = env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES)

    def test_enabled_overhead_within_5_percent():
        """The PR's acceptance criterion, best-of-3 against runner noise."""
        best = float("inf")
        for _ in range(3):
            report = measure(BENCH_ROWS, BENCH_QUERIES, blocks=12)
            best = min(best, report["overhead_percent"])
            if best <= 5.0:
                break
        assert best <= 5.0, f"metrics overhead {best:.2f}% > 5%"

    def test_no_bound_violations_at_bench_scale():
        report = measure(BENCH_ROWS, min(BENCH_QUERIES, 100), blocks=1)
        assert report["probe_bound_violations"] == 0


# ----------------------------------------------------------------------
# Script entry point: print + persist the baseline JSON
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int,
                        default=env_int("REPRO_BENCH_ROWS", DEFAULT_ROWS))
    parser.add_argument("--queries", type=int,
                        default=env_int("REPRO_BENCH_QUERIES",
                                        DEFAULT_WORKLOAD_QUERIES))
    parser.add_argument("--blocks", type=int, default=24)
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_observability.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows, args.queries, args.blocks)
    elapsed = time.perf_counter() - started

    print(
        f"observability @ {args.rows} rows, {args.queries} queries: "
        f"disabled {report['disabled_seconds']:.4f}s, "
        f"enabled {report['enabled_seconds']:.4f}s, "
        f"overhead {report['overhead_percent']:+.2f}% "
        f"({report['per_query_overhead_us']:+.1f} us/query; "
        f"measured in {elapsed:.1f}s)"
    )
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
