"""Sharded fan-out benchmark: throughput vs. shards, workers and backend.

Beyond the paper (which runs each algorithm against one index): this
measures what :mod:`repro.sharding` costs and buys when the index is
hash-partitioned across N shards, across three execution backends:

* **serial** (``workers=0``) — the coordinator visits shards in a loop.
* **thread** (``workers=W``) — a persistent thread pool; in CPython the
  GIL keeps pure-python fan-out roughly flat, which the numbers document
  honestly.
* **process** (``worker_mode="process"``) — :mod:`repro.parallel` worker
  processes, one per pool slot, each owning a fixed shard subset.  The
  gather algorithms (``UNaive``/``SNaive``/``UBasic``) ship only
  ``(query, k, algorithm, epoch)`` per shard and get candidate lists
  back, so their per-shard diverse top-k really runs concurrently.  The
  coordinator-driven scan path (``UProbe``) stays on the union cursors
  by design — its probe order is the bit-identity guarantee — so it
  never uses the process pool.

Answers are identical across every configuration (asserted), so the table
is a pure cost comparison.  The report records ``cpus``: on a single-core
host the process backend pays IPC for no concurrency and the speedup
targets are not applicable (the JSON says so rather than pretending).

Run under pytest (``pytest benchmarks/bench_sharding.py``) or directly
(``python benchmarks/bench_sharding.py --rows 100000 --out
BENCH_sharding.json``).  Scales follow ``REPRO_BENCH_ROWS`` /
``REPRO_BENCH_QUERIES``.
"""

import argparse
import gc
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import env_int, run_sharded_workload
from repro.core.engine import DiversityEngine
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex
from repro.sharding import ShardedEngine, ShardedIndex

DEFAULT_WORKLOAD_QUERIES = 200
K = 10
SHARD_COUNTS = (1, 2, 4, 8)
WORKERS = 4
#: Scatter-gather tags — the paths the process backend accelerates.
GATHER_TAGS = ("UNaive", "SNaive", "UBasic")
#: Coordinator-driven representative: quantifies union-cursor overhead.
SCAN_TAGS = ("UProbe",)
TAGS = GATHER_TAGS + SCAN_TAGS

#: Acceptance gate: the process backend must beat 1-shard serial by this
#: factor on at least MIN_WINNING_TAGS gather algorithms (multi-core
#: hosts at >= MIN_GATE_ROWS rows only — see ``speedup_gate``).
MIN_SPEEDUP = 1.3
MIN_WINNING_TAGS = 2
MIN_GATE_ROWS = 50_000

_DATA_CACHE = {}
_INDEX_CACHE = {}


def _setup(rows, queries=DEFAULT_WORKLOAD_QUERIES):
    key = (rows, queries)
    if key not in _DATA_CACHE:
        relation = generate_autos(AutosSpec(rows=rows, seed=42))
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=queries, predicates=1, selectivity=0.5, seed=1),
        ).materialise()
        _DATA_CACHE[key] = (relation, workload)
    return _DATA_CACHE[key]


def _index(relation, rows, shards):
    """Shard-count-keyed index cache: the build cost is paid once, not
    once per (algorithm x worker-config) cell."""
    key = (rows, shards)
    if key not in _INDEX_CACHE:
        if shards == 1:
            _INDEX_CACHE[key] = InvertedIndex.build(relation, autos_ordering())
        else:
            _INDEX_CACHE[key] = ShardedIndex.build(
                relation, autos_ordering(), shards=shards
            )
    return _INDEX_CACHE[key]


def _engine(relation, rows, shards, workers, worker_mode):
    index = _index(relation, rows, shards)
    if shards == 1:
        return DiversityEngine(index)
    return ShardedEngine(index, workers=workers, worker_mode=worker_mode)


def _workload_slice(workload, rows, tag):
    """Large-scale runs slice the workload (same idiom as bench_fig5):
    per-query cost grows with the data, total cost is what's bounded."""
    if rows <= 20_000:
        return workload
    divisor = 10 if tag in SCAN_TAGS else 5
    return workload[: max(10, len(workload) // divisor)]


def _configs(shards):
    """(workers, worker_mode) cells for one shard count."""
    if shards == 1:
        return [(0, "thread")]
    return [(0, "thread"), (WORKERS, "thread"), (WORKERS, "process")]


def measure(rows, queries=DEFAULT_WORKLOAD_QUERIES):
    """Time every (tag, shards, workers, mode) cell; JSON-able report."""
    relation, workload = _setup(rows, queries)
    cells = []
    baselines = {}
    for tag in TAGS:
        tag_workload = _workload_slice(workload, rows, tag)
        for shards in SHARD_COUNTS:
            for workers, worker_mode in _configs(shards):
                if worker_mode == "process" and tag in SCAN_TAGS:
                    continue  # scan never fans out to worker processes
                engine = _engine(relation, rows, shards, workers, worker_mode)
                gc.collect()
                try:
                    timing = run_sharded_workload(engine, tag_workload, K, tag)
                finally:
                    closer = getattr(engine, "close", None)
                    if callable(closer):
                        closer()
                if shards == 1:
                    baselines[tag] = timing
                baseline = baselines[tag]
                # Sharding must never change an answer: same result count
                # as the unsharded baseline over the identical workload.
                assert timing.results_returned == baseline.results_returned, (
                    f"{tag} shards={shards} mode={worker_mode} returned "
                    f"{timing.results_returned} != {baseline.results_returned}"
                )
                seconds = timing.total_seconds
                cells.append(
                    {
                        "algorithm": tag,
                        "shards": shards,
                        "workers": workers,
                        "worker_mode": timing.worker_mode,
                        "queries": len(tag_workload),
                        "seconds": round(seconds, 6),
                        "queries_per_second": round(
                            len(tag_workload) / seconds, 1
                        ) if seconds > 0 else float("inf"),
                        "relative_to_1_shard": round(
                            seconds / baseline.total_seconds, 3
                        ) if baseline.total_seconds > 0 else float("inf"),
                        "next_calls": timing.next_calls,
                        "results_returned": timing.results_returned,
                    }
                )
    report = {
        "benchmark": "sharding",
        "rows": rows,
        "queries": queries,
        "k": K,
        "router": "hash",
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "cells": cells,
    }
    report["speedup_gate"] = speedup_gate(report)
    return report


def best_process_speedups(report):
    """Per gather tag: serial-baseline seconds / best process-cell seconds
    (normalised per query — the slices are identical, but be explicit)."""
    speedups = {}
    for tag in GATHER_TAGS:
        serial = next(
            (c for c in report["cells"]
             if c["algorithm"] == tag and c["shards"] == 1), None
        )
        process = [
            c for c in report["cells"]
            if c["algorithm"] == tag and c["worker_mode"] in ("fork", "spawn")
        ]
        if serial is None or not process or serial["seconds"] <= 0:
            continue
        per_query_serial = serial["seconds"] / serial["queries"]
        best = max(
            (c["queries"] / c["seconds"]) * per_query_serial
            for c in process if c["seconds"] > 0
        )
        speedups[tag] = round(best, 3)
    return speedups


def speedup_gate(report):
    """The acceptance check as data: applicable?, satisfied?, evidence.

    Applicable only on multi-core hosts at >= MIN_GATE_ROWS rows: with
    one CPU the worker processes time-slice one core and the fan-out
    cannot beat serial no matter how cheap the transport is.
    """
    speedups = best_process_speedups(report)
    applicable = (
        (report["cpus"] or 1) >= 2 and report["rows"] >= MIN_GATE_ROWS
    )
    winners = [tag for tag, s in speedups.items() if s >= MIN_SPEEDUP]
    losers = [tag for tag, s in speedups.items() if s < 1.0]
    return {
        "applicable": applicable,
        "min_speedup": MIN_SPEEDUP,
        "min_winning_tags": MIN_WINNING_TAGS,
        "process_vs_serial": speedups,
        "winners": winners,
        "slower_than_serial": losers,
        "satisfied": (
            len(winners) >= MIN_WINNING_TAGS and not losers
            if applicable else None
        ),
    }


# ----------------------------------------------------------------------
# pytest entry points (same shape as the other benchmarks)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", 5000)
    BENCH_QUERIES = env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES)

    @pytest.mark.parametrize("shards", SHARD_COUNTS[1:])
    def test_sharded_results_match_unsharded_at_scale(shards):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        plain = DiversityEngine(_index(relation, BENCH_ROWS, 1))
        sharded = ShardedEngine(
            _index(relation, BENCH_ROWS, shards), workers=4
        )
        for query in workload[: min(20, len(workload))]:
            for tag, scored in (("naive", False), ("probe", False), ("probe", True)):
                a = plain.search(query, K, algorithm=tag, scored=scored)
                b = sharded.search(query, K, algorithm=tag, scored=scored)
                assert a.deweys == b.deweys and a.scores == b.scores

    @pytest.mark.parametrize("shards", (2, 4))
    def test_process_results_match_unsharded_at_scale(shards):
        """The process backend differential, at benchmark scale: every
        gather algorithm bit-identical to the unsharded engine."""
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        plain = DiversityEngine(_index(relation, BENCH_ROWS, 1))
        with ShardedEngine(
            _index(relation, BENCH_ROWS, shards), workers=2,
            worker_mode="process",
        ) as engine:
            for query in workload[: min(20, len(workload))]:
                for tag, scored in (("naive", False), ("naive", True),
                                    ("basic", False)):
                    a = plain.search(query, K, algorithm=tag, scored=scored)
                    b = engine.search(query, K, algorithm=tag, scored=scored)
                    assert a.deweys == b.deweys and a.scores == b.scores, (
                        f"shards={shards} {tag} scored={scored}"
                    )

    def test_scatter_gather_throughput(benchmark):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        engine = ShardedEngine(_index(relation, BENCH_ROWS, 4))
        benchmark.group = f"sharding rows={BENCH_ROWS}"
        timing = benchmark.pedantic(
            run_sharded_workload, args=(engine, workload, K, "UNaive"),
            rounds=2, iterations=1,
        )
        assert timing.shards == 4

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="process fan-out cannot beat serial on a single core",
    )
    @pytest.mark.skipif(
        env_int("REPRO_BENCH_ROWS", 5000) < MIN_GATE_ROWS,
        reason=f"speedup gate needs REPRO_BENCH_ROWS >= {MIN_GATE_ROWS}",
    )
    def test_process_fanout_beats_serial():
        """Acceptance: >= MIN_SPEEDUP on >= MIN_WINNING_TAGS gather
        algorithms, and never slower than serial on any."""
        report = measure(BENCH_ROWS, BENCH_QUERIES)
        gate = report["speedup_gate"]
        assert gate["applicable"]
        assert gate["satisfied"], gate


# ----------------------------------------------------------------------
# Script entry point: print + persist the scaling table
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=env_int("REPRO_BENCH_ROWS", 5000))
    parser.add_argument(
        "--queries", type=int,
        default=env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES),
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_sharding.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows, args.queries)
    elapsed = time.perf_counter() - started

    print(
        f"sharded fan-out @ {args.rows} rows, {args.queries} queries, "
        f"k={K}, cpus={report['cpus']}:"
    )
    print(f"  {'algorithm':<10} {'shards':>6} {'workers':>7} {'mode':>7} "
          f"{'queries':>7} {'seconds':>9} {'q/s':>8} {'vs 1 shard':>10}")
    for cell in report["cells"]:
        print(
            f"  {cell['algorithm']:<10} {cell['shards']:>6} "
            f"{cell['workers']:>7} {cell['worker_mode']:>7} "
            f"{cell['queries']:>7} {cell['seconds']:>9.3f} "
            f"{cell['queries_per_second']:>8.1f} "
            f"{cell['relative_to_1_shard']:>9.2f}x"
        )
    gate = report["speedup_gate"]
    print(f"  process vs serial (per-query): {gate['process_vs_serial']}")
    if gate["applicable"]:
        verdict = "PASS" if gate["satisfied"] else "FAIL"
        print(f"  speedup gate (>= {MIN_SPEEDUP}x on >= "
              f"{MIN_WINNING_TAGS} gather algorithms): {verdict}")
    else:
        print(f"  speedup gate: not applicable "
              f"(cpus={report['cpus']}, rows={report['rows']}; needs >= 2 "
              f"cpus and >= {MIN_GATE_ROWS} rows)")
    print(f"  [measured in {elapsed:.1f}s]")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
