"""Sharded fan-out benchmark: throughput vs. shard count and pool size.

Beyond the paper (which runs each algorithm against one index): this
measures what :mod:`repro.sharding` costs and buys when the index is
hash-partitioned across N shards.  Two representative execution paths:

* **UNaive** — the scatter-gather path: every shard computes its local
  diverse top-k over its own (1/N-sized) row subset and the coordinator
  re-applies Definitions 1-2 to at most ``N*k`` candidates.  The exact
  post-processing, quadratic-ish in candidate count, shrinks per shard.
* **UProbe** — the coordinator-driven path: the unmodified algorithm runs
  against union cursors, each probe fanning out to all shards.  This is
  the price of bit-identical probing answers — expect overhead, not
  speedup, and this benchmark quantifies it.

Answers are identical across every configuration (asserted), so the table
is a pure cost comparison.  ``workers`` sizes the scatter thread pool; in
CPython the GIL keeps pure-python fan-out roughly flat, which the numbers
document honestly.

Run under pytest (``pytest benchmarks/bench_sharding.py``) or directly
(``python benchmarks/bench_sharding.py --out BENCH_sharding.json``).
Scales follow ``REPRO_BENCH_ROWS`` / ``REPRO_BENCH_QUERIES``.
"""

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import env_int, run_sharded_workload
from repro.core.engine import DiversityEngine
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex
from repro.sharding import ShardedEngine

DEFAULT_WORKLOAD_QUERIES = 200
K = 10
SHARD_COUNTS = (1, 2, 4, 8)
WORKER_POOLS = (0, 4)
TAGS = ("UNaive", "UProbe")

_CACHE = {}


def _setup(rows, queries=DEFAULT_WORKLOAD_QUERIES):
    key = (rows, queries)
    if key not in _CACHE:
        relation = generate_autos(AutosSpec(rows=rows, seed=42))
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=queries, predicates=1, selectivity=0.5, seed=1),
        ).materialise()
        _CACHE[key] = (relation, workload)
    return _CACHE[key]


def _engine(relation, shards, workers):
    if shards == 1:
        return DiversityEngine(InvertedIndex.build(relation, autos_ordering()))
    return ShardedEngine.from_relation(
        relation, autos_ordering(), shards=shards, workers=workers
    )


def measure(rows, queries=DEFAULT_WORKLOAD_QUERIES):
    """Time every (tag, shards, workers) cell; returns a JSON-able dict."""
    relation, workload = _setup(rows, queries)
    cells = []
    baselines = {}
    for tag in TAGS:
        for shards in SHARD_COUNTS:
            pools = (0,) if shards == 1 else WORKER_POOLS
            for workers in pools:
                engine = _engine(relation, shards, workers)
                gc.collect()
                timing = run_sharded_workload(engine, workload, K, tag)
                if shards == 1:
                    baselines[tag] = timing
                baseline = baselines[tag]
                # Sharding must never change an answer: same result count
                # as the unsharded baseline over the identical workload.
                assert timing.results_returned == baseline.results_returned, (
                    f"{tag} shards={shards} returned "
                    f"{timing.results_returned} != {baseline.results_returned}"
                )
                seconds = timing.total_seconds
                cells.append(
                    {
                        "algorithm": tag,
                        "shards": shards,
                        "workers": workers,
                        "seconds": round(seconds, 6),
                        "queries_per_second": round(queries / seconds, 1)
                        if seconds > 0 else float("inf"),
                        "relative_to_1_shard": round(
                            seconds / baseline.total_seconds, 3
                        ) if baseline.total_seconds > 0 else float("inf"),
                        "next_calls": timing.next_calls,
                        "results_returned": timing.results_returned,
                    }
                )
    return {
        "benchmark": "sharding",
        "rows": rows,
        "queries": queries,
        "k": K,
        "router": "hash",
        "python": platform.python_version(),
        "cells": cells,
    }


# ----------------------------------------------------------------------
# pytest entry points (same shape as the other benchmarks)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", 5000)
    BENCH_QUERIES = env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES)

    @pytest.mark.parametrize("shards", SHARD_COUNTS[1:])
    def test_sharded_results_match_unsharded_at_scale(shards):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        plain = DiversityEngine(InvertedIndex.build(relation, autos_ordering()))
        sharded = ShardedEngine.from_relation(
            relation, autos_ordering(), shards=shards, workers=4
        )
        for query in workload[: min(20, len(workload))]:
            for tag, scored in (("naive", False), ("probe", False), ("probe", True)):
                a = plain.search(query, K, algorithm=tag, scored=scored)
                b = sharded.search(query, K, algorithm=tag, scored=scored)
                assert a.deweys == b.deweys and a.scores == b.scores

    def test_scatter_gather_throughput(benchmark):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        engine = ShardedEngine.from_relation(relation, autos_ordering(), shards=4)
        benchmark.group = f"sharding rows={BENCH_ROWS}"
        timing = benchmark.pedantic(
            run_sharded_workload, args=(engine, workload, K, "UNaive"),
            rounds=2, iterations=1,
        )
        assert timing.shards == 4


# ----------------------------------------------------------------------
# Script entry point: print + persist the scaling table
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=env_int("REPRO_BENCH_ROWS", 5000))
    parser.add_argument(
        "--queries", type=int,
        default=env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES),
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_sharding.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows, args.queries)
    elapsed = time.perf_counter() - started

    print(
        f"sharded fan-out @ {args.rows} rows, {args.queries} queries, k={K}:"
    )
    print(f"  {'algorithm':<10} {'shards':>6} {'workers':>7} "
          f"{'seconds':>9} {'q/s':>8} {'vs 1 shard':>10}")
    for cell in report["cells"]:
        print(
            f"  {cell['algorithm']:<10} {cell['shards']:>6} "
            f"{cell['workers']:>7} {cell['seconds']:>9.3f} "
            f"{cell['queries_per_second']:>8.1f} "
            f"{cell['relative_to_1_shard']:>9.2f}x"
        )
    print(f"  [measured in {elapsed:.1f}s]")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
