"""Figure 5: response time vs data size (unscored).

Paper shape: UNaive grows with the number of listings while UOnePass and
UProbe stay flat, tracking UBasic.  Each benchmark row is (algorithm, rows);
compare rows of the same algorithm across sizes to read the trend.

The ladder defaults to the paper's full 10**5 listings: the compressed
posting backend (``REPRO_BENCH_BACKEND``, default ``compressed``) keeps
the resident footprint of the largest index in the tens of megabytes, so
the full-scale point fits in a laptop-class run.  ``REPRO_BENCH_MAX_ROWS``
moves the top rung in either direction (it never drops below
``REPRO_BENCH_ROWS``): the nightly CI job exports ``1_000_000`` for a
10x-beyond-paper point, and above 10**5 rows the workload slices scale
down further so total wall-clock grows sublinearly with the ladder.
"""

import os

import pytest

from repro.bench.harness import env_int, run_workload
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex

from conftest import BENCH_QUERIES, BENCH_ROWS

MAX_ROWS = max(env_int("REPRO_BENCH_MAX_ROWS", 100_000), BENCH_ROWS)
BACKEND = os.environ.get("REPRO_BENCH_BACKEND", "compressed")
SIZES = sorted({max(500, MAX_ROWS // 100), max(1000, MAX_ROWS // 10), MAX_ROWS})
ALGORITHMS = ["UNaive", "UBasic", "UOnePass", "UProbe"]

_CACHE = {}


def _setup(rows):
    key = (rows, BACKEND)
    if key not in _CACHE:
        relation = generate_autos(AutosSpec(rows=rows, seed=42))
        index = InvertedIndex.build(relation, autos_ordering(), backend=BACKEND)
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(
                queries=BENCH_QUERIES, predicates=1, selectivity=0.5, seed=1
            ),
        ).materialise()
        _CACHE[key] = (index, workload)
    return _CACHE[key]


@pytest.mark.parametrize("rows", SIZES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5(benchmark, algorithm, rows):
    index, workload = _setup(rows)
    if algorithm == "UNaive" and rows > 20_000:
        # UNaive materialises every match; at full scale a slice of the
        # workload is enough to read the linear trend from mean_ms.
        workload = workload[: max(1, len(workload) // 5)]
    if rows > 100_000:
        # Beyond the paper's scale (the nightly 10**6 rung) every
        # algorithm runs a thinner slice: per-query cost is what the
        # trend reads, total wall-clock is what CI budgets.
        workload = workload[: max(1, len(workload) // 10)]
    benchmark.group = f"fig5 rows={rows}"
    benchmark.extra_info["backend"] = BACKEND
    benchmark.extra_info["rows"] = rows
    timing = benchmark.pedantic(
        run_workload, args=(index, workload, 10, algorithm), rounds=2, iterations=1
    )
    assert timing.results_returned >= 0
