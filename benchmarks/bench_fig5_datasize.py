"""Figure 5: response time vs data size (unscored).

Paper shape: UNaive grows with the number of listings while UOnePass and
UProbe stay flat, tracking UBasic.  Each benchmark row is (algorithm, rows);
compare rows of the same algorithm across sizes to read the trend.
"""

import pytest

from repro.bench.harness import run_workload
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex

from conftest import BENCH_QUERIES, BENCH_ROWS

SIZES = [max(500, BENCH_ROWS // 4), max(1000, BENCH_ROWS // 2), BENCH_ROWS]
ALGORITHMS = ["UNaive", "UBasic", "UOnePass", "UProbe"]

_CACHE = {}


def _setup(rows):
    if rows not in _CACHE:
        relation = generate_autos(AutosSpec(rows=rows, seed=42))
        index = InvertedIndex.build(relation, autos_ordering())
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(
                queries=BENCH_QUERIES, predicates=1, selectivity=0.5, seed=1
            ),
        ).materialise()
        _CACHE[rows] = (index, workload)
    return _CACHE[rows]


@pytest.mark.parametrize("rows", SIZES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig5(benchmark, algorithm, rows):
    index, workload = _setup(rows)
    benchmark.group = f"fig5 rows={rows}"
    timing = benchmark.pedantic(
        run_workload, args=(index, workload, 10, algorithm), rounds=2, iterations=1
    )
    assert timing.results_returned >= 0
