"""Ablation: sorted-array vs B+-tree posting lists.

Both backends implement the same seek interface; the array is cache-friendly
(binary search over a packed list), the B+-tree supports cheaper incremental
maintenance.  Query-time behaviour should be in the same ballpark.
"""

import pytest

from repro.bench.harness import run_workload
from repro.data.autos import autos_ordering
from repro.index.inverted import InvertedIndex

BACKENDS = ["array", "bptree"]
ALGORITHMS = ["UOnePass", "UProbe"]

_CACHE = {}


def _index(relation, backend):
    if backend not in _CACHE:
        _CACHE[backend] = InvertedIndex.build(
            relation, autos_ordering(), backend=backend
        )
    return _CACHE[backend]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_backend(benchmark, autos_relation, unscored_workload, algorithm, backend):
    index = _index(autos_relation, backend)
    benchmark.group = f"abl-backend {algorithm}"
    benchmark.pedantic(
        run_workload, args=(index, unscored_workload, 10, algorithm),
        rounds=2, iterations=1,
    )
