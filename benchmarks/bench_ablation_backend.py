"""Ablation: sorted-array vs B+-tree vs compressed posting lists.

All three backends implement the same seek interface; the array is
cache-friendly (binary search over a packed list of tuples), the B+-tree
supports cheaper incremental maintenance, and the compressed backend
stores delta-encoded Dewey components in flat buffers with galloping
seek — an order of magnitude less resident memory for query times in the
same ballpark.  Each benchmark row carries both wall-clock and
resident-bytes columns (``extra_info``), so one table answers the
time/space trade-off.
"""

import pytest

from repro.bench.harness import run_workload
from repro.index.postings import BACKENDS

ALGORITHMS = ["UOnePass", "UProbe"]


@pytest.mark.parametrize("backend", list(BACKENDS))
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_backend(benchmark, backend_index, unscored_workload, algorithm, backend):
    index = backend_index(backend)
    stats = index.memory_stats()
    benchmark.group = f"abl-backend {algorithm}"
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["postings_bytes"] = stats["bytes"]
    benchmark.extra_info["postings_count"] = stats["postings"]
    benchmark.extra_info["bytes_per_posting"] = round(
        stats["bytes_per_posting"], 2
    )
    benchmark.pedantic(
        run_workload, args=(index, unscored_workload, 10, algorithm),
        rounds=2, iterations=1,
    )
