"""Index construction benchmarks.

The paper reports that "index generation is done offline and is very fast
(less than 5 minutes for 100K listings)" (Section V-A).  These benchmarks
measure our bulk build, incremental inserts, and snapshot round trip.
"""

import pytest

from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.index.inverted import InvertedIndex
from repro.index.snapshot import load_index, save_index

from conftest import BENCH_ROWS


@pytest.fixture(scope="module")
def relation():
    return generate_autos(AutosSpec(rows=BENCH_ROWS, seed=42))


@pytest.mark.parametrize("backend", ["array", "bptree"])
def test_bulk_build(benchmark, relation, backend):
    benchmark.group = "index build"
    index = benchmark.pedantic(
        InvertedIndex.build,
        args=(relation, autos_ordering()),
        kwargs={"backend": backend},
        rounds=1,
        iterations=1,
    )
    assert len(index) == len(relation)


@pytest.mark.parametrize("backend", ["array", "bptree"])
def test_incremental_inserts(benchmark, relation, backend):
    benchmark.group = "index build"
    rows = min(2000, len(relation))

    def run():
        index = InvertedIndex(relation, autos_ordering(), backend=backend)
        for rid in range(rows):
            index.insert(rid)
        return index

    index = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(index) == rows


def test_snapshot_roundtrip(benchmark, relation, tmp_path):
    benchmark.group = "index build"
    index = InvertedIndex.build(relation, autos_ordering())
    path = tmp_path / "autos.idx"

    def run():
        save_index(index, path)
        return load_index(path)

    restored = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(restored) == len(index)
