"""The Experiments Summary table: every algorithm on the default workload.

Paper: "MultQ, UNaive, SNaive are orders of magnitude slower than the other
approaches. ... UProbe matches the performance of UBasic and SProbe comes
very close to the performance of SBasic."
"""

import pytest

from repro.bench.harness import run_workload

UNSCORED = ["MultQ", "UNaive", "UBasic", "UOnePass", "UProbe"]
SCORED = ["SNaive", "SBasic", "SOnePass", "SProbe"]


@pytest.mark.parametrize("algorithm", UNSCORED)
def test_summary_unscored(benchmark, autos_index, unscored_workload, algorithm):
    benchmark.group = "summary (unscored)"
    workload = unscored_workload
    if algorithm == "MultQ":
        workload = workload[: max(1, len(workload) // 2)]
    benchmark.pedantic(
        run_workload, args=(autos_index, workload, 10, algorithm),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("algorithm", SCORED)
def test_summary_scored(benchmark, autos_index, scored_workload, algorithm):
    benchmark.group = "summary (scored)"
    benchmark.pedantic(
        run_workload, args=(autos_index, scored_workload, 10, algorithm),
        rounds=1, iterations=1,
    )
