"""The Experiments Summary table: every algorithm on the default workload.

Paper: "MultQ, UNaive, SNaive are orders of magnitude slower than the other
approaches. ... UProbe matches the performance of UBasic and SProbe comes
very close to the performance of SBasic."

Every row carries a ``bytes_per_posting`` column so the summary reads as a
time/space table, and a third group re-runs the index-driven algorithms on
each posting backend (sorted-array, B+-tree, compressed) — the summary-level
view of ``bench_postings.py``.
"""

import pytest

from repro.bench.harness import run_workload
from repro.index.postings import BACKENDS

UNSCORED = ["MultQ", "UNaive", "UBasic", "UOnePass", "UProbe"]
SCORED = ["SNaive", "SBasic", "SOnePass", "SProbe"]
BACKEND_ALGORITHMS = ["UOnePass", "UProbe"]


def _memory_columns(benchmark, index):
    stats = index.memory_stats()
    benchmark.extra_info["backend"] = stats["backend"]
    benchmark.extra_info["bytes_per_posting"] = round(
        stats["bytes_per_posting"], 2
    )


@pytest.mark.parametrize("algorithm", UNSCORED)
def test_summary_unscored(benchmark, autos_index, unscored_workload, algorithm):
    benchmark.group = "summary (unscored)"
    _memory_columns(benchmark, autos_index)
    workload = unscored_workload
    if algorithm == "MultQ":
        workload = workload[: max(1, len(workload) // 2)]
    benchmark.pedantic(
        run_workload, args=(autos_index, workload, 10, algorithm),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("algorithm", SCORED)
def test_summary_scored(benchmark, autos_index, scored_workload, algorithm):
    benchmark.group = "summary (scored)"
    _memory_columns(benchmark, autos_index)
    benchmark.pedantic(
        run_workload, args=(autos_index, scored_workload, 10, algorithm),
        rounds=1, iterations=1,
    )


@pytest.mark.parametrize("backend", list(BACKENDS))
@pytest.mark.parametrize("algorithm", BACKEND_ALGORITHMS)
def test_summary_backends(
    benchmark, backend_index, unscored_workload, algorithm, backend
):
    index = backend_index(backend)
    benchmark.group = f"summary (backends, {algorithm})"
    _memory_columns(benchmark, index)
    benchmark.pedantic(
        run_workload, args=(index, unscored_workload, 10, algorithm),
        rounds=1, iterations=1,
    )
