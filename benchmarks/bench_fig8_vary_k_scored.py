"""Figure 8: response time vs k (scored, weighted disjunctive queries).

Paper shape: SOnePass and SProbe grow roughly linearly with k but beat
SNaive throughout; SProbe comes close to SBasic (plain WAND).
"""

import pytest

from repro.bench.harness import run_workload

K_GRID = [1, 10, 50, 100]
ALGORITHMS = ["SNaive", "SBasic", "SOnePass", "SProbe"]


@pytest.mark.parametrize("k", K_GRID)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig8(benchmark, autos_index, scored_workload, algorithm, k):
    benchmark.group = f"fig8 k={k}"
    benchmark.pedantic(
        run_workload,
        args=(autos_index, scored_workload, k, algorithm),
        rounds=2,
        iterations=1,
    )
