"""Auto-selection regret benchmark: the planner scored against the oracle.

Races ``algorithm="auto"`` against every fixed diversity-preserving
algorithm over the standard mixed workload mix
(:data:`repro.bench.autoselect.WORKLOAD_MIX` — autos match-all, narrow
big-k, scored, disjunctive auctions, Zipf-repeated) and reports:

* per-workload **regret tables** — auto seconds, each fixed algorithm's
  seconds, the per-workload oracle, auto's choice tally;
* **win/loss counts** of auto against every fixed run it raced;
* the aggregate ``criteria`` gate: auto's total wall-clock across the mix
  must stay within ``REGRET_RATIO_CEIL`` (1.05x) of the best *single*
  fixed algorithm — the deployment auto replaces — and auto must adapt
  (pick at least two different algorithms across the mix).

Timing methodology matches the repo's other benchmarks: repeats are
interleaved round-robin across runners keeping the min per runner, and
auto's timed region includes its own planning work.  The measured regret
is also exported through the metrics registry (``repro_plan_regret_ms``
histogram, ``repro_plan_races_total`` counters) — the snapshot lands in
the JSON report.

Run under pytest (``pytest benchmarks/bench_autoselect.py``) or directly
(``python benchmarks/bench_autoselect.py --rows 20000 --queries 60
--out BENCH_autoselect.json``).  Scale follows ``REPRO_BENCH_ROWS`` /
``REPRO_BENCH_QUERIES`` / ``REPRO_BENCH_REPEATS``.
"""

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.autoselect import mixed_workloads, race_mix, summarise
from repro.bench.harness import env_int
from repro.observability import MetricsRegistry
from repro.planner import DEFAULT_CANDIDATES

DEFAULT_ROWS = 5000
DEFAULT_QUERIES = 30
DEFAULT_REPEATS = 3

#: The acceptance gate the report is scored against (mirrors
#: ``tests/test_autoselect_oracle.py``).
REGRET_RATIO_CEIL = 1.05   # auto total ÷ best single fixed algorithm
MIN_DISTINCT_CHOICES = 2   # auto must adapt, not hard-code one algorithm


def measure(rows, queries, repeats):
    """Race the whole mix; returns a JSON-able report dict."""
    registry = MetricsRegistry(enabled=True)
    workloads = mixed_workloads(rows=rows, queries=queries, seed=1)
    reports = race_mix(workloads, repeats=repeats, registry=registry)
    summary = summarise(reports)
    distinct_choices = len(summary["choices_total"])
    return {
        "benchmark": "autoselect",
        "rows": rows,
        "queries": queries,
        "k": sorted({w["k"] for w in workloads}),
        "repeats": repeats,
        "candidates": list(DEFAULT_CANDIDATES),
        "python": platform.python_version(),
        **summary,
        "metrics": registry.snapshot(),
        "criteria": {
            "regret_ratio": summary["total"]["regret_ratio"],
            "regret_ratio_ceil": REGRET_RATIO_CEIL,
            "best_fixed": summary["total"]["best_fixed"],
            "distinct_choices": distinct_choices,
            "min_distinct_choices": MIN_DISTINCT_CHOICES,
            "wins": summary["wins"],
            "races": summary["races"],
        },
    }


# ----------------------------------------------------------------------
# pytest entry points (same shape as the other benchmarks)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", DEFAULT_ROWS)
    BENCH_QUERIES = env_int("REPRO_BENCH_QUERIES", DEFAULT_QUERIES)
    BENCH_REPEATS = env_int("REPRO_BENCH_REPEATS", DEFAULT_REPEATS)

    @pytest.fixture(scope="module")
    def autoselect_report():
        return measure(BENCH_ROWS, BENCH_QUERIES, BENCH_REPEATS)

    def test_regret_within_ceiling(autoselect_report):
        criteria = autoselect_report["criteria"]
        assert criteria["regret_ratio"] <= REGRET_RATIO_CEIL, criteria

    def test_auto_adapts_across_mix(autoselect_report):
        criteria = autoselect_report["criteria"]
        assert criteria["distinct_choices"] >= MIN_DISTINCT_CHOICES

    def test_mix_is_not_degenerate(autoselect_report):
        oracles = {
            entry["best_fixed"] for entry in autoselect_report["workloads"]
        }
        assert len(oracles) >= 2, oracles

    def test_regret_exported_to_registry(autoselect_report):
        histograms = [
            h for h in autoselect_report["metrics"]["histograms"]
            if h["name"] == "repro_plan_regret_ms"
        ]
        assert len(histograms) == len(autoselect_report["workloads"])


# ----------------------------------------------------------------------
# Script entry point: print + persist the report
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rows", type=int, default=env_int("REPRO_BENCH_ROWS", DEFAULT_ROWS)
    )
    parser.add_argument(
        "--queries", type=int,
        default=env_int("REPRO_BENCH_QUERIES", DEFAULT_QUERIES),
    )
    parser.add_argument(
        "--repeats", type=int,
        default=env_int("REPRO_BENCH_REPEATS", DEFAULT_REPEATS),
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_autoselect.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows, args.queries, args.repeats)
    elapsed = time.perf_counter() - started

    fixed = list(DEFAULT_CANDIDATES)
    print(
        f"autoselect @ {args.rows} rows, {args.queries} queries/workload, "
        f"{args.repeats} repeats:"
    )
    print(
        f"  {'workload':<22} {'auto s':>9} "
        + " ".join(f"{a + ' s':>11}" for a in fixed)
        + f" {'oracle':>9} {'regret':>7}  choices"
    )
    for entry in report["workloads"]:
        choices = ",".join(
            f"{a}:{n}" for a, n in entry["choices"].items()
        )
        print(
            f"  {entry['workload']:<22} {entry['auto_seconds']:>9.4f} "
            + " ".join(
                f"{entry['fixed_seconds'][a]:>11.4f}" for a in fixed
            )
            + f" {entry['best_fixed']:>9} {entry['regret_ratio']:>7.3f}  {choices}"
        )
    criteria = report["criteria"]
    total = report["total"]
    print(
        f"  total: auto {total['auto_seconds']:.4f}s vs best fixed "
        f"({total['best_fixed']}) {total['best_fixed_seconds']:.4f}s "
        f"-> ratio {criteria['regret_ratio']} "
        f"(ceiling {REGRET_RATIO_CEIL})"
    )
    print(
        f"  auto won {criteria['wins']}/{criteria['races']} races; "
        f"choices: {report['choices_total']}"
    )
    print(f"  [measured in {elapsed:.1f}s]")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
