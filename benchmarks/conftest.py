"""Shared fixtures for the figure benchmarks.

Scales are laptop-friendly by default; export ``REPRO_BENCH_ROWS`` /
``REPRO_BENCH_QUERIES`` to approach the paper's setup (Fig. 4: 10K-100K
listings, 5000 queries).  Each benchmark measures one full workload run of
one algorithm, so the pytest-benchmark comparison table reproduces a
figure's series directly.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.harness import env_int
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.index.inverted import InvertedIndex

BENCH_ROWS = env_int("REPRO_BENCH_ROWS", 5000)
BENCH_QUERIES = env_int("REPRO_BENCH_QUERIES", 10)


@pytest.fixture(scope="session")
def autos_relation():
    return generate_autos(AutosSpec(rows=BENCH_ROWS, seed=42))


@pytest.fixture(scope="session")
def backend_index(autos_relation):
    """Session-shared per-backend index builder over the autos relation.

    The cache key includes the relation identity, so a stale index can
    never leak across a differently parametrized relation — the bug the
    old module-level ``_CACHE`` in bench_ablation_backend had.
    """
    cache = {}

    def build(backend: str):
        key = (id(autos_relation), backend)
        if key not in cache:
            cache[key] = InvertedIndex.build(
                autos_relation, autos_ordering(), backend=backend
            )
        return cache[key]

    return build


@pytest.fixture(scope="session")
def autos_index(autos_relation):
    return InvertedIndex.build(autos_relation, autos_ordering())


@pytest.fixture(scope="session")
def unscored_workload(autos_relation):
    return WorkloadGenerator(
        autos_relation,
        WorkloadSpec(queries=BENCH_QUERIES, predicates=2, selectivity=0.5, seed=1),
    ).materialise()


@pytest.fixture(scope="session")
def scored_workload(autos_relation):
    return WorkloadGenerator(
        autos_relation,
        WorkloadSpec(
            queries=BENCH_QUERIES,
            predicates=3,
            selectivity=0.3,
            disjunctive=True,
            weighted=True,
            seed=1,
        ),
    ).materialise()
