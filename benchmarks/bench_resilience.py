"""Resilience benchmark: what the failure machinery costs and absorbs.

Two questions, answered with numbers:

* **Zero-fault overhead** — the resilience layer (policy checks, breaker
  bookkeeping, deadline plumbing, and the chaos proxy itself at all-zero
  fault rates) must be nearly free on the healthy path.  Each cell times
  the same workload on a bare sharded engine and on one wrapped in a
  zero-fault :class:`ChaosPolicy`; the target (recorded in the JSON) is
  <5% overhead.
* **Tail latency under faults** — with 10% transient faults injected per
  shard read, bounded retries absorb every fault (no failed queries, no
  degraded answers) at a measurable latency cost; with one shard crashed,
  the gather path keeps answering (100% degraded) while paying only the
  breaker-gated probe.  Latency distributions are reported as p50/p95/p99
  because resilience is a tail phenomenon.

Answers stay correct throughout: transient-only cells assert zero failed
and zero degraded queries; the crash cell asserts every answer is flagged
degraded and none is lost.

Run under pytest (``pytest benchmarks/bench_resilience.py``) or directly
(``python benchmarks/bench_resilience.py --out BENCH_resilience.json``).
Scales follow ``REPRO_BENCH_ROWS`` / ``REPRO_BENCH_QUERIES``.
"""

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import env_int, run_chaos_workload, run_sharded_workload
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.resilience import ChaosPolicy, ResiliencePolicy
from repro.sharding import ShardedEngine

DEFAULT_WORKLOAD_QUERIES = 200
K = 10
SHARD_COUNTS = (2, 4)
TAGS = ("UNaive", "UProbe")
TRANSIENT_RATE = 0.10
OVERHEAD_TARGET_PCT = 5.0    # the goal recorded in the JSON report
OVERHEAD_ASSERT_PCT = 25.0   # the test gate (generous: timing noise)

#: Generous retries, microscopic backoff, breakers disabled (min_calls
#: above the window): transient faults must be fully absorbed, so failed
#: or degraded queries in the transient cells are a correctness bug.
ABSORB_ALL = ResiliencePolicy(
    max_retries=50, backoff_base_ms=0.01, backoff_cap_ms=0.1,
    breaker_window=8, breaker_min_calls=9,
)

_CACHE = {}


def _setup(rows, queries=DEFAULT_WORKLOAD_QUERIES):
    key = (rows, queries)
    if key not in _CACHE:
        relation = generate_autos(AutosSpec(rows=rows, seed=42))
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=queries, predicates=1, selectivity=0.5, seed=1),
        ).materialise()
        _CACHE[key] = (relation, workload)
    return _CACHE[key]


def _engine(relation, shards, policy=None):
    return ShardedEngine.from_relation(
        relation, autos_ordering(), shards=shards, policy=policy
    )


def _time_zero_fault(relation, workload, tag, shards):
    """(bare_seconds, wrapped_seconds, overhead_pct) for one cell."""
    bare = _engine(relation, shards)
    gc.collect()
    base = run_sharded_workload(bare, workload, K, tag)
    wrapped = _engine(relation, shards)
    wrapped.inject_chaos(ChaosPolicy())  # all-zero fault plan: pure proxy cost
    gc.collect()
    proxied = run_sharded_workload(wrapped, workload, K, tag)
    assert proxied.results_returned == base.results_returned
    overhead = (
        (proxied.total_seconds - base.total_seconds) / base.total_seconds * 100.0
        if base.total_seconds > 0 else 0.0
    )
    return base, proxied, overhead


def measure(rows, queries=DEFAULT_WORKLOAD_QUERIES):
    """Time every cell; returns a JSON-able dict."""
    relation, workload = _setup(rows, queries)
    overhead_cells = []
    for tag in TAGS:
        for shards in SHARD_COUNTS:
            base, proxied, overhead = _time_zero_fault(
                relation, workload, tag, shards
            )
            overhead_cells.append(
                {
                    "algorithm": tag,
                    "shards": shards,
                    "bare_seconds": round(base.total_seconds, 6),
                    "zero_fault_chaos_seconds": round(proxied.total_seconds, 6),
                    "overhead_pct": round(overhead, 2),
                    "target_pct": OVERHEAD_TARGET_PCT,
                }
            )

    chaos_cells = []
    for tag in TAGS:
        engine = _engine(relation, 4, policy=ABSORB_ALL)
        engine.inject_chaos(ChaosPolicy.transient(TRANSIENT_RATE, seed=7))
        gc.collect()
        timing = run_chaos_workload(engine, workload, K, tag)
        assert timing.failed_queries == 0, f"{tag}: retries must absorb faults"
        assert timing.degraded_queries == 0
        chaos_cells.append(
            {
                "scenario": f"transient {TRANSIENT_RATE:.0%}",
                "algorithm": tag,
                "shards": 4,
                "seconds": round(timing.total_seconds, 6),
                "p50_ms": round(timing.percentile_ms(50), 3),
                "p95_ms": round(timing.percentile_ms(95), 3),
                "p99_ms": round(timing.percentile_ms(99), 3),
                "retries": timing.retries,
                "degraded_queries": timing.degraded_queries,
                "failed_queries": timing.failed_queries,
                "faults_injected": engine.sharded_index.chaos.injected["transient"],
            }
        )

    engine = _engine(relation, 4)
    engine.inject_chaos(ChaosPolicy.crash_shards(3))
    gc.collect()
    timing = run_chaos_workload(engine, workload, K, "UNaive")
    assert timing.failed_queries == 0, "gather must degrade, not fail"
    assert timing.degraded_queries == timing.queries
    chaos_cells.append(
        {
            "scenario": "one shard crashed",
            "algorithm": "UNaive",
            "shards": 4,
            "seconds": round(timing.total_seconds, 6),
            "p50_ms": round(timing.percentile_ms(50), 3),
            "p95_ms": round(timing.percentile_ms(95), 3),
            "p99_ms": round(timing.percentile_ms(99), 3),
            "retries": timing.retries,
            "degraded_queries": timing.degraded_queries,
            "failed_queries": timing.failed_queries,
            "breaker_opens": sum(b.opens for b in engine.health.breakers),
        }
    )

    return {
        "benchmark": "resilience",
        "rows": rows,
        "queries": queries,
        "k": K,
        "transient_rate": TRANSIENT_RATE,
        "python": platform.python_version(),
        "zero_fault_overhead": overhead_cells,
        "under_faults": chaos_cells,
    }


# ----------------------------------------------------------------------
# pytest entry points (same shape as the other benchmarks)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", 5000)
    BENCH_QUERIES = env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES)

    @pytest.mark.parametrize("tag", TAGS)
    def test_zero_fault_overhead_is_small(tag):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        _, _, overhead = _time_zero_fault(relation, workload, tag, 4)
        assert overhead < OVERHEAD_ASSERT_PCT, (
            f"{tag}: zero-fault chaos wrapping cost {overhead:.1f}% "
            f"(gate {OVERHEAD_ASSERT_PCT}%, target {OVERHEAD_TARGET_PCT}%)"
        )

    def test_transient_faults_are_absorbed_without_degradation():
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        engine = _engine(relation, 4, policy=ABSORB_ALL)
        engine.inject_chaos(ChaosPolicy.transient(TRANSIENT_RATE, seed=7))
        timing = run_chaos_workload(engine, workload, K, "UNaive")
        assert timing.failed_queries == 0
        assert timing.degraded_queries == 0
        assert timing.retries > 0  # the chaos actually fired

    def test_crashed_shard_degrades_every_gather_answer(benchmark):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        engine = _engine(relation, 4)
        engine.inject_chaos(ChaosPolicy.crash_shards(3))
        benchmark.group = f"resilience rows={BENCH_ROWS}"
        timing = benchmark.pedantic(
            run_chaos_workload, args=(engine, workload, K, "UNaive"),
            rounds=2, iterations=1,
        )
        assert timing.failed_queries == 0
        assert timing.degraded_queries == timing.queries


# ----------------------------------------------------------------------
# Script entry point: print + persist the report
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=env_int("REPRO_BENCH_ROWS", 5000))
    parser.add_argument(
        "--queries", type=int,
        default=env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES),
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_resilience.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows, args.queries)
    elapsed = time.perf_counter() - started

    print(f"resilience @ {args.rows} rows, {args.queries} queries, k={K}:")
    print(f"  zero-fault overhead (target <{OVERHEAD_TARGET_PCT:g}%):")
    for cell in report["zero_fault_overhead"]:
        print(
            f"    {cell['algorithm']:<8} shards={cell['shards']} "
            f"bare {cell['bare_seconds']:.3f}s  wrapped "
            f"{cell['zero_fault_chaos_seconds']:.3f}s  "
            f"overhead {cell['overhead_pct']:+.1f}%"
        )
    print("  under faults:")
    for cell in report["under_faults"]:
        print(
            f"    {cell['scenario']:<16} {cell['algorithm']:<8} "
            f"p50 {cell['p50_ms']:.2f}ms p95 {cell['p95_ms']:.2f}ms "
            f"p99 {cell['p99_ms']:.2f}ms  retries={cell['retries']} "
            f"degraded={cell['degraded_queries']} failed={cell['failed_queries']}"
        )
    print(f"  [measured in {elapsed:.1f}s]")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
