"""HTTP serving load harness: closed-loop capacity, then open-loop overload.

The acceptance experiment for the serving front-end's robustness story:

* **Phase 1 (closed loop).**  A few client threads issue Zipf-skewed
  queries back to back; completed/elapsed is the engine's *sustainable*
  throughput on this hardware.
* **Phase 2 (open loop).**  Requests arrive on a seeded Poisson schedule
  at ``overload_factor`` × the sustainable rate (default 2×) with a per-
  request deadline.  An open-loop driver does not slow down when the
  server does — exactly the regime where an unprotected queue collapses.
  The harness records per-request status + latency and splits
  percentiles by path:

  - **admitted** (200): must keep the deadline SLO — no queue collapse;
  - **shed** (429/503): must be *fast* — rejection happens at admission,
    in O(1), long before the deadline.

* Afterwards, ``/metrics?format=json`` is scraped and the paper
  access-bound violation counters (Theorem 2 probe bound, one-pass
  single-scan, plan bound) are asserted zero — concurrency must not
  bend the paper's guarantees.

Determinism: one ``--seed`` drives both the workload generator and the
arrival schedule, so a CI rerun shreds the same requests at the same
offsets (modulo wall-clock service-time jitter).

Run directly (``python benchmarks/bench_serving_http.py --out
BENCH_serving_http.json``) or under pytest for the acceptance gates.
Scales follow ``REPRO_BENCH_ROWS`` / ``REPRO_BENCH_QUERIES``.
"""

import argparse
import gc
import json
import platform
import random
import sys
import threading
import time
import urllib.parse
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DiversityEngine
from repro.bench.harness import env_int
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.observability import MetricsRegistry, use_registry
from repro.query.rewrite import to_query_string
from repro.server import ServerConfig, ServerThread
from repro.serving import ServingEngine

DEFAULT_ROWS = 5000
DEFAULT_DISTINCT = 50
DEFAULT_ZIPF_S = 1.0
K = 10
DEADLINE_MS = 500.0
CLOSED_LOOP_CLIENTS = 4
CLOSED_LOOP_SECONDS = 2.0
OPEN_LOOP_SECONDS = 4.0
#: Target multiple of the measured sustainable rate.  The schedule aims
#: above 2x so the *achieved* rate still clears the 2x acceptance bar
#: when the in-process driver loses a little pacing to GIL contention.
OVERLOAD_FACTOR = 3.0
#: Emulated per-query service floor.  The paper-scale index answers a
#: query in single-digit milliseconds, so an in-process driver would be
#: measuring socket overhead, not admission control; the floor stands in
#: for corpus-scale service cost and puts the bottleneck back on the
#: engine workers, where admission control operates.  The real engine
#: still executes every admitted query (so the bound-violation counters
#: are genuinely exercised under concurrency).
SERVICE_FLOOR_MS = 20.0
SENDER_POOL = 64


class FlooredServing(ServingEngine):
    """A serving engine with an emulated per-query service-time floor."""

    def __init__(self, relation, floor_ms: float):
        super().__init__(
            DiversityEngine.from_relation(relation, autos_ordering()))
        self._floor_s = floor_ms / 1000.0

    def search(self, query, k, algorithm="probe", scored=False, optimize=True):
        if self._floor_s > 0.0:
            time.sleep(self._floor_s)
        return super().search(query, k, algorithm=algorithm, scored=scored,
                              optimize=optimize)


def percentile(samples, fraction):
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def _percentiles(samples):
    return {
        "p50_ms": percentile(samples, 0.50),
        "p95_ms": percentile(samples, 0.95),
        "p99_ms": percentile(samples, 0.99),
        "count": len(samples),
    }


def _query_targets(relation, seed, distinct=DEFAULT_DISTINCT,
                   zipf_s=DEFAULT_ZIPF_S, draws=2000):
    """Zipf-skewed pool of URL targets, fully determined by ``seed``."""
    workload = WorkloadGenerator(
        relation,
        WorkloadSpec(queries=draws, predicates=2, selectivity=0.5,
                     distinct=distinct, zipf_s=zipf_s, seed=seed),
    ).materialise()
    targets = []
    for query in workload:
        text = urllib.parse.quote(to_query_string(query))
        targets.append(f"/search?q={text}&k={K}")
    return targets


def _get(base_url, target, deadline_ms=None):
    """One request; returns (status, latency_ms)."""
    url = base_url + target
    if deadline_ms is not None:
        url += f"&deadline_ms={deadline_ms:g}"
    started = time.perf_counter()
    try:
        with urllib.request.urlopen(url, timeout=60.0) as response:
            response.read()
            status = response.status
    except urllib.error.HTTPError as error:
        error.read()
        status = error.code
    return status, (time.perf_counter() - started) * 1000.0


def _closed_loop(base_url, targets, seconds, clients=CLOSED_LOOP_CLIENTS):
    """Back-to-back clients; returns sustainable queries/second."""
    completed = []
    stop_at = time.perf_counter() + seconds
    lock = threading.Lock()

    def client(offset):
        position = offset
        while time.perf_counter() < stop_at:
            status, latency_ms = _get(
                base_url, targets[position % len(targets)])
            position += clients
            with lock:
                completed.append((status, latency_ms))

    threads = [threading.Thread(target=client, args=(i,))
               for i in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    ok = sum(1 for status, _ in completed if status == 200)
    return ok / elapsed if elapsed > 0 else 0.0, completed


def _open_loop(base_url, targets, qps, seconds, seed,
               deadline_ms=DEADLINE_MS, pool=SENDER_POOL):
    """Seeded Poisson arrivals at ``qps``, fired by a fixed sender pool.

    Open-loop semantics: the arrival schedule never slows down because the
    server did.  A fixed pool (rather than a thread per request) keeps the
    driver itself cheap; at the rates this harness drives, the pool stays
    far from saturation because shed requests complete in milliseconds.
    """
    import queue as queue_module

    rng = random.Random(seed + 1)  # distinct stream from the workload's
    schedule = []
    at = 0.0
    position = 0
    while at < seconds:
        schedule.append((at, targets[position % len(targets)]))
        at += rng.expovariate(qps)
        position += 1
    outcomes = []
    lock = threading.Lock()
    work: "queue_module.Queue" = queue_module.Queue()

    def sender():
        while True:
            target = work.get()
            if target is None:
                return
            status, latency_ms = _get(base_url, target,
                                      deadline_ms=deadline_ms)
            with lock:
                outcomes.append((status, latency_ms))

    senders = [threading.Thread(target=sender, daemon=True)
               for _ in range(pool)]
    for thread in senders:
        thread.start()
    started = time.perf_counter()
    for at, target in schedule:
        delay = at - (time.perf_counter() - started)
        if delay > 0:
            time.sleep(delay)
        work.put(target)
    for _ in senders:
        work.put(None)
    for thread in senders:
        thread.join(timeout=120.0)
    elapsed = time.perf_counter() - started
    driven_qps = len(schedule) / elapsed if elapsed > 0 else 0.0
    return outcomes, driven_qps


def _bound_violations(snapshot):
    return sum(
        counter["value"]
        for counter in snapshot.get("counters", ())
        if counter["name"] in (
            "repro_probe_bound_violations_total",
            "repro_onepass_scan_violations_total",
            "repro_plan_bound_violations_total",
        )
    )


def measure(rows=None, seed=1, overload_factor=OVERLOAD_FACTOR,
            closed_seconds=CLOSED_LOOP_SECONDS,
            open_seconds=OPEN_LOOP_SECONDS,
            service_floor_ms=SERVICE_FLOOR_MS):
    """The full two-phase experiment; returns a JSON-able dict."""
    rows = rows if rows is not None else env_int("REPRO_BENCH_ROWS",
                                                 DEFAULT_ROWS)
    relation = generate_autos(AutosSpec(rows=rows, seed=42))
    targets = _query_targets(relation, seed)
    registry = MetricsRegistry()
    with use_registry(registry):
        serving = FlooredServing(relation, service_floor_ms)
        config = ServerConfig(
            workers=2,
            queue_depth=32,
            default_deadline_ms=DEADLINE_MS,
        )
        gc.collect()
        with ServerThread(serving, config, registry=registry) as thread:
            base_url = thread.base_url
            sustainable_qps, closed = _closed_loop(
                base_url, targets, closed_seconds)
            target_qps = max(1.0, sustainable_qps * overload_factor)
            gc.collect()
            outcomes, driven_qps = _open_loop(
                base_url, targets, target_qps, open_seconds, seed)
            status, _, body = None, None, None
            with urllib.request.urlopen(
                    base_url + "/metrics?format=json") as response:
                snapshot = json.loads(response.read())
            admission = thread.server.admission
            tallies = {
                "admitted": admission.admitted,
                "rejected": admission.rejected,
                "shed": admission.shed,
                "completed": admission.completed,
            }
        serving.close()

    admitted = [ms for status, ms in outcomes if status == 200]
    shed = [ms for status, ms in outcomes if status in (429, 503)]
    failed = [status for status, _ in outcomes
              if status not in (200, 429, 503, 504)]
    deadline_misses = [status for status, _ in outcomes if status == 504]
    in_slo = sum(1 for ms in admitted if ms <= DEADLINE_MS)
    return {
        "benchmark": "serving_http",
        "rows": rows,
        "seed": seed,
        "k": K,
        "service_floor_ms": service_floor_ms,
        "distinct_queries": DEFAULT_DISTINCT,
        "zipf_s": DEFAULT_ZIPF_S,
        "deadline_ms": DEADLINE_MS,
        "python": platform.python_version(),
        "closed_loop": {
            "clients": CLOSED_LOOP_CLIENTS,
            "seconds": closed_seconds,
            "sustainable_qps": round(sustainable_qps, 2),
            "latency": _percentiles([ms for s, ms in closed if s == 200]),
        },
        "open_loop": {
            "overload_factor": overload_factor,
            "target_qps": round(max(1.0, sustainable_qps * overload_factor), 2),
            "driven_qps": round(driven_qps, 2),
            "overload_ratio": round(driven_qps / sustainable_qps, 2)
            if sustainable_qps > 0 else None,
            "seconds": open_seconds,
            "requests": len(outcomes),
            "admitted": _percentiles(admitted),
            "shed": _percentiles(shed),
            "deadline_misses_504": len(deadline_misses),
            "unexpected_statuses": failed,
            "admitted_slo_attainment": round(in_slo / len(admitted), 4)
            if admitted else None,
        },
        "admission": tallies,
        "bound_violations": _bound_violations(snapshot),
    }


# ----------------------------------------------------------------------
# pytest acceptance gates (issue 8 overload criteria)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:

    @pytest.fixture(scope="module")
    def overload_run():
        rows = env_int("REPRO_BENCH_ROWS", 2000)
        return measure(rows=rows, seed=1)

    def test_overload_sheds_and_keeps_slo(overload_run):
        open_loop = overload_run["open_loop"]
        # Overload was actually driven well past sustainable capacity...
        assert open_loop["overload_ratio"] >= 1.5
        # ...and some requests were shed rather than queued to death.
        shed = open_loop["shed"]["count"]
        rejected_total = (overload_run["admission"]["rejected"]
                          + overload_run["admission"]["shed"])
        assert shed > 0 or rejected_total > 0
        # Admitted requests keep their deadline SLO (no queue collapse).
        slo = open_loop["admitted_slo_attainment"]
        if open_loop["admitted"]["count"]:
            assert slo is not None and slo >= 0.9
        assert open_loop["unexpected_statuses"] == []

    def test_shed_path_is_fast(overload_run):
        open_loop = overload_run["open_loop"]
        admitted = open_loop["admitted"]
        shed = open_loop["shed"]
        if shed["count"] and admitted["count"]:
            # Rejections must be decided at admission, far from the
            # deadline — p99(shed) well under p99(admitted).
            assert shed["p99_ms"] <= admitted["p99_ms"] * 0.75

    def test_no_bound_violations_under_concurrency(overload_run):
        assert overload_run["bound_violations"] == 0

    def test_same_seed_same_workload(overload_run):
        relation = generate_autos(
            AutosSpec(rows=overload_run["rows"], seed=42))
        assert _query_targets(relation, seed=1) == _query_targets(
            relation, seed=1)
        assert _query_targets(relation, seed=1) != _query_targets(
            relation, seed=2)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rows", type=int, default=None,
                        help="autos rows (default REPRO_BENCH_ROWS or 5000)")
    parser.add_argument("--seed", type=int, default=1,
                        help="one seed drives workload AND arrival schedule")
    parser.add_argument("--overload-factor", type=float,
                        default=OVERLOAD_FACTOR)
    parser.add_argument("--closed-seconds", type=float,
                        default=CLOSED_LOOP_SECONDS)
    parser.add_argument("--open-seconds", type=float,
                        default=OPEN_LOOP_SECONDS)
    parser.add_argument("--out", type=Path, default=None,
                        help="write the JSON document here")
    args = parser.parse_args()
    document = measure(
        rows=args.rows, seed=args.seed,
        overload_factor=args.overload_factor,
        closed_seconds=args.closed_seconds,
        open_seconds=args.open_seconds,
    )
    rendered = json.dumps(document, indent=2, sort_keys=True)
    print(rendered)
    if args.out is not None:
        args.out.write_text(rendered + "\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
