"""Replication benchmark: what exact-answer failover costs and buys.

Three questions, answered with numbers:

* **Availability through replica loss** — with replica 0 of *every*
  shard crashed, an unreplicated deployment loses scan queries outright
  and degrades gather answers; with R >= 2 every query is answered
  exactly (zero failed, zero degraded) at the cost of one failover per
  shard read.  Availability is reported per replica count.
* **Healthy-path overhead** — the :class:`~repro.replication.ReplicaSet`
  indirection (preference ordering, breaker bookkeeping, per-replica
  health) must be nearly free when nothing fails.  Each cell times the
  same workload on an unreplicated engine and on an R=2 deployment with
  no faults; the target (recorded in the JSON) is <5% overhead.
* **Hedged tail latency** — with a uniformly slow primary copy, hedged
  reads cut the latency distribution roughly to the backup's speed: the
  benchmark times the same slow-primary workload with hedging off and
  on, and reports p50/p95/p99 plus the fired/won/wasted hedge counts
  (at most one backup per read, by construction).

Correctness rides along: every cell asserts zero probe/onepass bound
violations from the metrics registry.

Run under pytest (``pytest benchmarks/bench_replication.py``) or directly
(``python benchmarks/bench_replication.py --out BENCH_replication.json``).
Scales follow ``REPRO_BENCH_ROWS`` / ``REPRO_BENCH_QUERIES``.
"""

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import env_int, run_chaos_workload, run_sharded_workload
from repro.data.autos import AutosSpec, autos_ordering, generate_autos
from repro.data.workload import WorkloadGenerator, WorkloadSpec
from repro.observability import MetricsRegistry, use_registry
from repro.resilience import ChaosPolicy, ResiliencePolicy, ShardFaultSpec
from repro.sharding import ShardedEngine

DEFAULT_WORKLOAD_QUERIES = 200
K = 10
SHARDS = 4
TAGS = ("UNaive", "UProbe")
REPLICA_COUNTS = (1, 2, 3)
OVERHEAD_TARGET_PCT = 5.0    # the goal recorded in the JSON report
OVERHEAD_ASSERT_PCT = 25.0   # the test gate (generous: timing noise)
SLOW_PRIMARY_MS = 4.0        # injected latency on every primary copy
HEDGE_MS = 1.0               # hedge delay floor for the tail cells
HEDGE_QUERIES = 30           # latency cells sleep for real; keep them small

#: Generous retries, breakers disabled (min_calls above the window):
#: replica failover must absorb every fault, so failed or degraded
#: queries in any replicated cell are a correctness bug.
ABSORB_ALL = ResiliencePolicy(
    max_retries=50, backoff_base_ms=0.01, backoff_cap_ms=0.1,
    breaker_window=8, breaker_min_calls=9,
)

_CACHE = {}


def _setup(rows, queries=DEFAULT_WORKLOAD_QUERIES):
    key = (rows, queries)
    if key not in _CACHE:
        relation = generate_autos(AutosSpec(rows=rows, seed=42))
        workload = WorkloadGenerator(
            relation,
            WorkloadSpec(queries=queries, predicates=1, selectivity=0.5, seed=1),
        ).materialise()
        _CACHE[key] = (relation, workload)
    return _CACHE[key]


def _engine(relation, replicas, hedge_ms=None):
    return ShardedEngine.from_relation(
        relation, autos_ordering(), shards=SHARDS, policy=ABSORB_ALL,
        replicas=replicas, hedge_ms=hedge_ms,
    )


def _assert_no_bound_violations(registry):
    assert registry.value("repro_probe_bound_violations_total") == 0
    assert registry.value("repro_onepass_scan_violations_total") == 0


def _failovers(engine):
    return sum(
        getattr(replica_set, "failovers", 0)
        for replica_set in engine.sharded_index.shards
    )


def _availability_cell(relation, workload, tag, replicas):
    """Crash copy 0 of every shard; measure what survives."""
    registry = MetricsRegistry()
    with use_registry(registry):
        engine = _engine(relation, replicas)
        chaos = engine.inject_chaos(ChaosPolicy(seed=7))
        for shard_id in range(SHARDS):
            if replicas > 1:
                chaos.crash(shard_id, replica_id=0)
            else:
                # Unreplicated shards have no replica address: losing
                # "copy 0" means losing the shard itself — total outage.
                chaos.crash(shard_id)
        gc.collect()
        timing = run_chaos_workload(engine, workload, K, tag)
        _assert_no_bound_violations(registry)
        if replicas > 1:
            # Replica failover makes the loss invisible — by contract.
            assert timing.failed_queries == 0, (
                f"{tag} R={replicas}: failover must absorb the crash")
            assert timing.degraded_queries == 0
        answered = timing.queries - timing.failed_queries
        exact = answered - timing.degraded_queries
        cell = {
            "algorithm": tag,
            "replicas": replicas,
            "shards": SHARDS,
            "seconds": round(timing.total_seconds, 6),
            "p50_ms": round(timing.percentile_ms(50), 3),
            "p99_ms": round(timing.percentile_ms(99), 3),
            "failed_queries": timing.failed_queries,
            "degraded_queries": timing.degraded_queries,
            "availability_pct": round(answered / timing.queries * 100.0, 2),
            "exact_pct": round(exact / timing.queries * 100.0, 2),
            "failovers": _failovers(engine),
        }
        engine.close()
        return cell


def _overhead_cell(relation, workload, tag, trials=3):
    """Fault-free R=1 vs R=2 timings; best of ``trials`` each (timeit
    methodology — sub-50ms cells are dominated by scheduler noise)."""
    registry = MetricsRegistry()
    with use_registry(registry):
        bare = _engine(relation, replicas=1)
        replicated = _engine(relation, replicas=2)
        gc.collect()
        base = min(
            (run_sharded_workload(bare, workload, K, tag)
             for _ in range(trials)),
            key=lambda timing: timing.total_seconds,
        )
        doubled = min(
            (run_sharded_workload(replicated, workload, K, tag)
             for _ in range(trials)),
            key=lambda timing: timing.total_seconds,
        )
        assert doubled.results_returned == base.results_returned
        assert _failovers(replicated) == 0  # healthy path: primaries only
        bare.close()
        replicated.close()
        _assert_no_bound_violations(registry)
    overhead = (
        (doubled.total_seconds - base.total_seconds)
        / base.total_seconds * 100.0
        if base.total_seconds > 0 else 0.0
    )
    return {
        "algorithm": tag,
        "shards": SHARDS,
        "unreplicated_seconds": round(base.total_seconds, 6),
        "replicated_seconds": round(doubled.total_seconds, 6),
        "overhead_pct": round(overhead, 2),
        "target_pct": OVERHEAD_TARGET_PCT,
    }


def _hedging_cells(relation, workload, tag):
    """The same slow-primary workload, hedging off then on."""
    cells = []
    for hedge_ms in (None, HEDGE_MS):
        registry = MetricsRegistry()
        with use_registry(registry):
            engine = _engine(relation, replicas=2, hedge_ms=hedge_ms)
            chaos = engine.inject_chaos(ChaosPolicy(seed=11))
            for shard_id in range(SHARDS):
                chaos.set_spec(
                    (shard_id, 0),
                    ShardFaultSpec(latency_ms=SLOW_PRIMARY_MS),
                )
            gc.collect()
            timing = run_chaos_workload(engine, workload, K, tag)
            assert timing.failed_queries == 0
            assert timing.degraded_queries == 0
            fired = won = wasted = requests = 0
            for replica_set in engine.sharded_index.shards:
                fired += replica_set.hedges_fired
                won += replica_set.hedges_won
                wasted += replica_set.hedges_wasted
                requests += sum(
                    row["requests"] for row in replica_set.health_rows()
                )
            # At most one backup leg per read, by construction.
            assert 2 * fired <= requests
            _assert_no_bound_violations(registry)
            cells.append(
                {
                    "algorithm": tag,
                    "hedge_ms": hedge_ms,
                    "slow_primary_ms": SLOW_PRIMARY_MS,
                    "seconds": round(timing.total_seconds, 6),
                    "p50_ms": round(timing.percentile_ms(50), 3),
                    "p95_ms": round(timing.percentile_ms(95), 3),
                    "p99_ms": round(timing.percentile_ms(99), 3),
                    "hedges_fired": fired,
                    "hedges_won": won,
                    "hedges_wasted": wasted,
                }
            )
            engine.close()
    return cells


def measure(rows, queries=DEFAULT_WORKLOAD_QUERIES):
    """Time every cell; returns a JSON-able dict."""
    relation, workload = _setup(rows, queries)
    availability = [
        _availability_cell(relation, workload, tag, replicas)
        for tag in TAGS
        for replicas in REPLICA_COUNTS
    ]
    overhead = [_overhead_cell(relation, workload, tag) for tag in TAGS]
    hedging = _hedging_cells(relation, workload[:HEDGE_QUERIES], "UProbe")
    return {
        "benchmark": "replication",
        "rows": rows,
        "queries": queries,
        "k": K,
        "shards": SHARDS,
        "python": platform.python_version(),
        "availability_under_replica_loss": availability,
        "healthy_path_overhead": overhead,
        "hedged_tail_latency": hedging,
    }


# ----------------------------------------------------------------------
# pytest entry points (same shape as the other benchmarks)
# ----------------------------------------------------------------------
try:
    import pytest
except ImportError:  # pragma: no cover - direct script runs without pytest
    pytest = None

if pytest is not None:
    BENCH_ROWS = env_int("REPRO_BENCH_ROWS", 5000)
    BENCH_QUERIES = env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES)

    @pytest.mark.parametrize("tag", TAGS)
    def test_replica_failover_keeps_full_availability(tag):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        cell = _availability_cell(relation, workload, tag, replicas=2)
        assert cell["availability_pct"] == 100.0
        assert cell["exact_pct"] == 100.0
        assert cell["failovers"] > 0  # the crash was actually on the path

    @pytest.mark.parametrize("tag", TAGS)
    def test_healthy_path_overhead_is_small(tag):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        cell = _overhead_cell(relation, workload, tag)
        assert cell["overhead_pct"] < OVERHEAD_ASSERT_PCT, (
            f"{tag}: replication cost {cell['overhead_pct']:.1f}% on the "
            f"healthy path (gate {OVERHEAD_ASSERT_PCT}%, "
            f"target {OVERHEAD_TARGET_PCT}%)"
        )

    def test_hedging_fires_and_stays_bounded(benchmark):
        relation, workload = _setup(BENCH_ROWS, BENCH_QUERIES)
        benchmark.group = f"replication rows={BENCH_ROWS}"
        cells = benchmark.pedantic(
            _hedging_cells,
            args=(relation, workload[:HEDGE_QUERIES], "UProbe"),
            rounds=1, iterations=1,
        )
        unhedged, hedged = cells
        assert unhedged["hedges_fired"] == 0
        assert hedged["hedges_fired"] > 0
        assert (hedged["hedges_won"] + hedged["hedges_wasted"]
                <= hedged["hedges_fired"])


# ----------------------------------------------------------------------
# Script entry point: print + persist the report
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=env_int("REPRO_BENCH_ROWS", 5000))
    parser.add_argument(
        "--queries", type=int,
        default=env_int("REPRO_BENCH_QUERIES", DEFAULT_WORKLOAD_QUERIES),
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="write the JSON report here (e.g. BENCH_replication.json)",
    )
    args = parser.parse_args(argv)

    started = time.perf_counter()
    report = measure(args.rows, args.queries)
    elapsed = time.perf_counter() - started

    print(f"replication @ {args.rows} rows, {args.queries} queries, "
          f"k={K}, shards={SHARDS}:")
    print("  availability with replica 0 of every shard crashed:")
    for cell in report["availability_under_replica_loss"]:
        print(
            f"    {cell['algorithm']:<8} R={cell['replicas']} "
            f"answered {cell['availability_pct']:6.2f}%  exact "
            f"{cell['exact_pct']:6.2f}%  failovers={cell['failovers']} "
            f"p99 {cell['p99_ms']:.2f}ms"
        )
    print(f"  healthy-path overhead (target <{OVERHEAD_TARGET_PCT:g}%):")
    for cell in report["healthy_path_overhead"]:
        print(
            f"    {cell['algorithm']:<8} bare "
            f"{cell['unreplicated_seconds']:.3f}s  R=2 "
            f"{cell['replicated_seconds']:.3f}s  "
            f"overhead {cell['overhead_pct']:+.1f}%"
        )
    print(f"  hedged tail latency (slow primary {SLOW_PRIMARY_MS:g}ms):")
    for cell in report["hedged_tail_latency"]:
        label = ("hedge off" if cell["hedge_ms"] is None
                 else f"hedge {cell['hedge_ms']:g}ms")
        print(
            f"    {label:<11} p50 {cell['p50_ms']:.2f}ms "
            f"p95 {cell['p95_ms']:.2f}ms p99 {cell['p99_ms']:.2f}ms  "
            f"fired={cell['hedges_fired']} won={cell['hedges_won']}"
        )
    print(f"  [measured in {elapsed:.1f}s]")
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"  wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
