"""Figure 6: response time vs k (unscored).

Paper shape: all algorithms beat UNaive (and MultQ, orders of magnitude
slower); diversity overhead over the non-diverse UBasic stays negligible
even at k = 100.
"""

import pytest

from repro.bench.harness import run_workload

K_GRID = [1, 10, 50, 100]
ALGORITHMS = ["UNaive", "UBasic", "UOnePass", "UProbe"]


@pytest.mark.parametrize("k", K_GRID)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_fig6(benchmark, autos_index, unscored_workload, algorithm, k):
    benchmark.group = f"fig6 k={k}"
    benchmark.pedantic(
        run_workload,
        args=(autos_index, unscored_workload, k, algorithm),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("k", [10])
def test_fig6_multq(benchmark, autos_index, unscored_workload, k):
    """MultQ at one point only: it is the paper's orders-of-magnitude loser
    and would dominate the suite's runtime across the grid."""
    benchmark.group = f"fig6 k={k}"
    benchmark.pedantic(
        run_workload,
        args=(autos_index, unscored_workload[: max(1, len(unscored_workload) // 2)], k, "MultQ"),
        rounds=1,
        iterations=1,
    )
