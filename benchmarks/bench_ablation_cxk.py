"""Ablation: the introduction's retrieve-c*k-and-rerank baseline.

Benchmarks the window-and-MMR method across window factors and asserts the
paper's qualitative claim: small windows leave water-fill violations that
the exact algorithms never produce.
"""

import pytest

from repro.core.baselines import collect_all
from repro.core.mmr import retrieve_ck_diverse
from repro.core.probing import probe_unscored
from repro.core.similarity import balance_violations
from repro.index.merged import MergedList

C_VALUES = [1, 2, 10]


@pytest.mark.parametrize("c", C_VALUES)
def test_cxk_baseline(benchmark, autos_index, unscored_workload, c):
    benchmark.group = "abl-cxk"

    def run():
        total_violations = 0
        for query in unscored_workload:
            selected = retrieve_ck_diverse(MergedList(query, autos_index), 10, c)
            full = collect_all(MergedList(query, autos_index))
            if full:
                total_violations += balance_violations(selected, full)
        return total_violations

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_exact_probe_has_zero_violations(benchmark, autos_index, unscored_workload):
    benchmark.group = "abl-cxk"

    def run():
        for query in unscored_workload:
            selected = probe_unscored(MergedList(query, autos_index), 10)
            full = collect_all(MergedList(query, autos_index))
            assert balance_violations(selected, full) == 0
        return 0

    benchmark.pedantic(run, rounds=1, iterations=1)
